package lsp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"weblint/internal/lint"
	"weblint/internal/warn"
)

// client drives a Server over in-memory pipes the way an editor
// would: requests and notifications go down one pipe, and a pump
// goroutine feeds everything the server says into a channel the
// helpers select on.
type client struct {
	t     *testing.T
	out   *conn // write half toward the server
	msgs  chan *message
	runE  chan error
	id    int
	queue []*message // notifications read while waiting for responses
}

func startServer(t *testing.T, opts Options) *client {
	t.Helper()
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	s := NewServer(opts)
	runE := make(chan error, 1)
	go func() {
		runE <- s.Run(inR, outW)
		_ = outW.Close()
	}()
	cl := &client{
		t:    t,
		out:  newConn(strings.NewReader(""), inW),
		msgs: make(chan *message, 64),
		runE: runE,
	}
	reader := newConn(outR, io.Discard)
	go func() {
		for {
			m, err := reader.read()
			if err != nil {
				close(cl.msgs)
				return
			}
			cl.msgs <- m
		}
	}()
	t.Cleanup(func() {
		_ = inW.Close()
		_ = inR.Close()
		_ = outR.Close()
	})
	return cl
}

// next returns the next server message, failing after timeout.
func (cl *client) next(timeout time.Duration) *message {
	cl.t.Helper()
	if len(cl.queue) > 0 {
		m := cl.queue[0]
		cl.queue = cl.queue[1:]
		return m
	}
	select {
	case m, ok := <-cl.msgs:
		if !ok {
			cl.t.Fatal("server closed the stream")
		}
		return m
	case <-time.After(timeout):
		cl.t.Fatal("timed out waiting for a server message")
	}
	return nil
}

// tryNext returns the next message or nil after timeout (for
// asserting silence).
func (cl *client) tryNext(timeout time.Duration) *message {
	if len(cl.queue) > 0 {
		m := cl.queue[0]
		cl.queue = cl.queue[1:]
		return m
	}
	select {
	case m := <-cl.msgs:
		return m
	case <-time.After(timeout):
		return nil
	}
}

// call sends a request and returns its response, queueing any
// notifications that arrive first.
func (cl *client) call(method string, params any) *message {
	cl.t.Helper()
	cl.id++
	raw, err := json.Marshal(params)
	if err != nil {
		cl.t.Fatal(err)
	}
	id := json.RawMessage(fmt.Sprintf("%d", cl.id))
	if err := cl.out.write(&message{ID: id, Method: method, Params: raw}); err != nil {
		cl.t.Fatal(err)
	}
	for {
		m := cl.next(5 * time.Second)
		if len(m.ID) != 0 && string(m.ID) == string(id) && m.Method == "" {
			return m
		}
		cl.queue = append(cl.queue, m)
	}
}

func (cl *client) notify(method string, params any) {
	cl.t.Helper()
	raw, err := json.Marshal(params)
	if err != nil {
		cl.t.Fatal(err)
	}
	if err := cl.out.write(&message{Method: method, Params: raw}); err != nil {
		cl.t.Fatal(err)
	}
}

// waitDiagnostics waits for the next publishDiagnostics for uri.
func (cl *client) waitDiagnostics(uri string) publishDiagnosticsParams {
	cl.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		m := cl.next(5 * time.Second)
		if m.Method != "textDocument/publishDiagnostics" {
			continue // unrelated server traffic
		}
		var p publishDiagnosticsParams
		if err := json.Unmarshal(m.Params, &p); err != nil {
			cl.t.Fatal(err)
		}
		if p.URI == uri {
			return p
		}
	}
	cl.t.Fatal("no publishDiagnostics arrived")
	return publishDiagnosticsParams{}
}

func (cl *client) initialize(rootPath string) {
	cl.t.Helper()
	params := map[string]any{}
	if rootPath != "" {
		params["workspaceFolders"] = []map[string]any{{"uri": "file://" + rootPath, "name": "ws"}}
	}
	resp := cl.call("initialize", params)
	if resp.Error != nil {
		cl.t.Fatalf("initialize: %+v", resp.Error)
	}
	var res initializeResult
	if err := json.Unmarshal(resp.Result, &res); err != nil {
		cl.t.Fatal(err)
	}
	if !res.Capabilities.CodeActionProvider || res.Capabilities.TextDocumentSync.Change != 2 ||
		res.Capabilities.DiagnosticProvider == nil {
		cl.t.Fatalf("capabilities = %+v", res.Capabilities)
	}
	cl.notify("initialized", map[string]any{})
}

func (cl *client) open(uri, text string) {
	cl.t.Helper()
	cl.notify("textDocument/didOpen", didOpenParams{
		TextDocument: TextDocumentItem{URI: uri, Version: 1, Text: text},
	})
}

// suiteSample loads one sample from the shared test suite.
func suiteSample(t *testing.T, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "lint", "testdata", "suite", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestDidOpenRoundTrip is the acceptance round trip: didOpen a suite
// sample, receive publishDiagnostics whose IDs and lines match the
// linter's own CheckStringTo output for the same document.
func TestDidOpenRoundTrip(t *testing.T) {
	src := suiteSample(t, "meta-in-body.html")
	cl := startServer(t, Options{})
	cl.initialize("")
	uri := "file:///ws/meta-in-body.html"
	cl.open(uri, src)
	p := cl.waitDiagnostics(uri)

	var col warn.Collector
	lint.MustNew(lint.Options{}).CheckStringTo("/ws/meta-in-body.html", src, &col)
	want := col.Messages
	warn.SortByLine(want)

	if len(p.Diagnostics) != len(want) {
		t.Fatalf("%d diagnostics, linter says %d", len(p.Diagnostics), len(want))
	}
	for i, d := range p.Diagnostics {
		if d.Code != want[i].ID {
			t.Errorf("diag %d code = %s, want %s", i, d.Code, want[i].ID)
		}
		if d.Range.Start.Line != want[i].Line-1 {
			t.Errorf("diag %d line = %d, want %d", i, d.Range.Start.Line, want[i].Line-1)
		}
		if d.Source != "weblint" || d.Message != want[i].Text {
			t.Errorf("diag %d = %+v", i, d)
		}
	}
}

// TestSeverityMapping: error/warning/style map to LSP 1/2/3.
func TestSeverityMapping(t *testing.T) {
	cl := startServer(t, Options{})
	cl.initialize("")
	uri := "untitled:sev"
	// unmatched-close is an error; img-alt a warning.
	cl.open(uri, "<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><IMG SRC=\"x.gif\"></B></BODY></HTML>")
	p := cl.waitDiagnostics(uri)
	bySev := map[string]int{}
	for _, d := range p.Diagnostics {
		bySev[d.Code] = d.Severity
	}
	if bySev["unmatched-close"] != SeverityError {
		t.Errorf("unmatched-close severity = %d", bySev["unmatched-close"])
	}
	if bySev["img-alt"] != SeverityWarning {
		t.Errorf("img-alt severity = %d", bySev["img-alt"])
	}
}

// TestCodeActionFixAppliesClean is the acceptance quick-fix check: the
// code action for a fixable diagnostic carries an edit that, applied
// the way an editor would, re-lints clean. The document leads with an
// astral-plane char on the IMG's line, so the byte->UTF-16 conversion
// is load-bearing, not incidental.
func TestCodeActionFixAppliesClean(t *testing.T) {
	src := "<!DOCTYPE HTML PUBLIC \"-//W3C//DTD HTML 4.0//EN\">\n" +
		"<HTML>\n<HEAD>\n<TITLE>t</TITLE>\n" +
		"<META NAME=\"description\" CONTENT=\"d\">\n" +
		"<META NAME=\"keywords\" CONTENT=\"k\">\n" +
		"</HEAD>\n<BODY>\n" +
		"😀🎉 <IMG SRC=\"x.gif\">\n" +
		"</BODY>\n</HTML>\n"
	cl := startServer(t, Options{})
	cl.initialize("")
	uri := "untitled:fixme"
	cl.open(uri, src)
	p := cl.waitDiagnostics(uri)
	if len(p.Diagnostics) != 1 || p.Diagnostics[0].Code != "img-alt" {
		t.Fatalf("diagnostics = %+v, want exactly img-alt", p.Diagnostics)
	}

	resp := cl.call("textDocument/codeAction", codeActionParams{
		TextDocument: TextDocumentIdentifier{URI: uri},
		Range:        p.Diagnostics[0].Range,
	})
	if resp.Error != nil {
		t.Fatalf("codeAction: %+v", resp.Error)
	}
	var actions []CodeAction
	if err := json.Unmarshal(resp.Result, &actions); err != nil {
		t.Fatal(err)
	}
	// Expect the quick fix plus the document-wide source.fixAll.
	var quick []CodeAction
	for _, a := range actions {
		if a.Kind == "quickfix" {
			quick = append(quick, a)
		}
	}
	if len(quick) != 1 {
		t.Fatalf("%d quickfix actions in %+v, want 1", len(quick), actions)
	}
	a := quick[0]
	if a.Title != `insert ALT=""` {
		t.Errorf("action = %+v", a)
	}
	edits := a.Edit.Changes[uri]
	if len(edits) == 0 {
		t.Fatal("action carries no edits")
	}

	fixed := ApplyTextEdits(src, edits)
	if msgs := lint.MustNew(lint.Options{}).CheckString("fixed.html", fixed); len(msgs) != 0 {
		t.Errorf("fixed document still lints dirty: %v", msgs)
	}
}

// TestDidChangeDebounce: a typing burst produces one re-lint with the
// final content, tagged with the final version.
func TestDidChangeDebounce(t *testing.T) {
	cl := startServer(t, Options{DebounceDelay: 50 * time.Millisecond})
	cl.initialize("")
	uri := "untitled:burst"
	clean := "<!DOCTYPE HTML PUBLIC \"-//W3C//DTD HTML 4.0//EN\"><HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P>x</BODY></HTML>"
	cl.open(uri, clean)
	if p := cl.waitDiagnostics(uri); len(p.Diagnostics) != 0 {
		t.Fatalf("open diagnostics = %+v", p.Diagnostics)
	}
	for v := 2; v <= 4; v++ {
		text := clean
		if v == 4 {
			text = strings.Replace(clean, "<P>x", "<P>x<IMG SRC=\"x.gif\">", 1)
		}
		cl.notify("textDocument/didChange", didChangeParams{
			TextDocument:   VersionedTextDocumentIdentifier{URI: uri, Version: v},
			ContentChanges: []textDocumentContentChangeEvent{{Text: text}},
		})
	}
	p := cl.waitDiagnostics(uri)
	if p.Version != 4 {
		t.Errorf("published version = %d, want 4 (the last change)", p.Version)
	}
	found := false
	for _, d := range p.Diagnostics {
		if d.Code == "img-alt" {
			found = true
		}
	}
	if !found {
		t.Errorf("final content's diagnostic missing: %+v", p.Diagnostics)
	}
	if extra := cl.tryNext(150 * time.Millisecond); extra != nil {
		t.Errorf("unexpected extra message after the debounced publish: %+v", extra)
	}
}

// TestDidCloseClearsDiagnostics: closing retracts with an empty list.
func TestDidCloseClearsDiagnostics(t *testing.T) {
	cl := startServer(t, Options{})
	cl.initialize("")
	uri := "untitled:closing"
	cl.open(uri, "<B>unclosed")
	if p := cl.waitDiagnostics(uri); len(p.Diagnostics) == 0 {
		t.Fatal("expected diagnostics for a broken doc")
	}
	cl.notify("textDocument/didClose", didCloseParams{TextDocument: TextDocumentIdentifier{URI: uri}})
	if p := cl.waitDiagnostics(uri); len(p.Diagnostics) != 0 {
		t.Errorf("close did not clear diagnostics: %+v", p.Diagnostics)
	}
}

// TestWeblintrcDiscovery: a document under a workspace folder with a
// .weblintrc is linted under that configuration; a document outside
// uses the defaults; editing the rc file takes effect (mtime-keyed
// cache).
func TestWeblintrcDiscovery(t *testing.T) {
	ws := t.TempDir()
	sub := filepath.Join(ws, "pages")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	rc := filepath.Join(ws, ".weblintrc")
	if err := os.WriteFile(rc, []byte("disable img-alt\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := "<!DOCTYPE HTML PUBLIC \"-//W3C//DTD HTML 4.0//EN\"><HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P>x<IMG SRC=\"x.gif\"></BODY></HTML>"

	cl := startServer(t, Options{DebounceDelay: -1})
	cl.initialize(ws)

	inURI := "file://" + filepath.Join(sub, "in.html")
	cl.open(inURI, doc)
	if p := cl.waitDiagnostics(inURI); len(p.Diagnostics) != 0 {
		t.Errorf("workspace rc not applied: %+v", p.Diagnostics)
	}

	outURI := "file://" + filepath.Join(t.TempDir(), "out.html")
	cl.open(outURI, doc)
	p := cl.waitDiagnostics(outURI)
	if len(p.Diagnostics) != 1 || p.Diagnostics[0].Code != "img-alt" {
		t.Errorf("outside-workspace diagnostics = %+v, want img-alt", p.Diagnostics)
	}

	// Edit the rc: the next lint rebuilds the linter.
	if err := os.WriteFile(rc, []byte("# nothing disabled\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	past := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(rc, past, past); err != nil {
		t.Fatal(err)
	}
	cl.notify("textDocument/didChange", didChangeParams{
		TextDocument:   VersionedTextDocumentIdentifier{URI: inURI, Version: 2},
		ContentChanges: []textDocumentContentChangeEvent{{Text: doc}},
	})
	if p := cl.waitDiagnostics(inURI); len(p.Diagnostics) != 1 {
		t.Errorf("rc edit not picked up: %+v", p.Diagnostics)
	}
}

// TestShutdownExit: shutdown answers null; exit ends Run cleanly.
func TestShutdownExit(t *testing.T) {
	cl := startServer(t, Options{})
	cl.initialize("")
	resp := cl.call("shutdown", nil)
	if resp.Error != nil || string(resp.Result) != "null" {
		t.Fatalf("shutdown response = %+v", resp)
	}
	cl.notify("exit", nil)
	select {
	case err := <-cl.runE:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not exit")
	}
}

// TestUnknownMethod: unknown requests get MethodNotFound; unknown
// notifications are ignored.
func TestUnknownMethod(t *testing.T) {
	cl := startServer(t, Options{})
	cl.initialize("")
	resp := cl.call("workspace/definitelyNot", map[string]any{})
	if resp.Error == nil || resp.Error.Code != codeMethodNotFound {
		t.Fatalf("response = %+v", resp)
	}
	cl.notify("$/cancelRequest", map[string]any{"id": 1})
	// Still alive:
	if resp := cl.call("shutdown", nil); resp.Error != nil {
		t.Fatal("server died after unknown notification")
	}
}

// TestConcurrentChangeBursts exercises the timer/dispatch
// interleaving under the race detector: two documents, rapid change
// bursts, tiny debounce.
func TestConcurrentChangeBursts(t *testing.T) {
	cl := startServer(t, Options{DebounceDelay: time.Millisecond})
	cl.initialize("")
	uris := []string{"untitled:r1", "untitled:r2"}
	doc := "<!DOCTYPE HTML PUBLIC \"-//W3C//DTD HTML 4.0//EN\"><HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P>x</BODY></HTML>"
	for _, uri := range uris {
		cl.open(uri, doc)
	}
	for v := 2; v < 30; v++ {
		for _, uri := range uris {
			cl.notify("textDocument/didChange", didChangeParams{
				TextDocument:   VersionedTextDocumentIdentifier{URI: uri, Version: v},
				ContentChanges: []textDocumentContentChangeEvent{{Text: doc + strings.Repeat(" ", v%3)}},
			})
		}
	}
	// Drain until the stream goes quiet; the race detector is the
	// real assertion here.
	for cl.tryNext(200*time.Millisecond) != nil {
	}
	if resp := cl.call("shutdown", nil); resp.Error != nil {
		t.Fatalf("shutdown after burst: %+v", resp.Error)
	}
}

// TestCodeActionStaleAnalysisRefused: between a didChange and its
// debounced re-lint, edits computed against the old text could
// corrupt the client's buffer — the server must offer nothing.
func TestCodeActionStaleAnalysisRefused(t *testing.T) {
	cl := startServer(t, Options{DebounceDelay: 5 * time.Second})
	cl.initialize("")
	uri := "untitled:stale"
	doc := "<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><P>x<IMG SRC=\"x.gif\"></BODY></HTML>"
	cl.open(uri, doc)
	p := cl.waitDiagnostics(uri)
	if len(p.Diagnostics) == 0 {
		t.Fatal("expected diagnostics")
	}
	act := func() []CodeAction {
		resp := cl.call("textDocument/codeAction", codeActionParams{
			TextDocument: TextDocumentIdentifier{URI: uri},
			Range:        p.Diagnostics[0].Range,
		})
		var actions []CodeAction
		if err := json.Unmarshal(resp.Result, &actions); err != nil {
			t.Fatal(err)
		}
		return actions
	}
	if len(act()) == 0 {
		t.Fatal("fresh analysis offered no actions")
	}
	cl.notify("textDocument/didChange", didChangeParams{
		TextDocument:   VersionedTextDocumentIdentifier{URI: uri, Version: 2},
		ContentChanges: []textDocumentContentChangeEvent{{Text: "\n" + doc}},
	})
	if got := act(); len(got) != 0 {
		t.Errorf("stale analysis served %d actions; edits would be offset against the new text", len(got))
	}
}
