package testsuite

import (
	"strings"
	"testing"
	"testing/fstest"
)

func TestParseCaseBasics(t *testing.T) {
	c, err := ParseCase("<!-- expect: a b -->\n<HTML></HTML>\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Expect) != 2 || c.Expect[0] != "a" || c.Expect[1] != "b" {
		t.Errorf("expect = %v", c.Expect)
	}
	if !strings.Contains(c.Source, "<HTML>") || !strings.Contains(c.Source, "expect:") {
		t.Error("source truncated; header must stay part of the sample")
	}
}

func TestParseCaseEmptyExpect(t *testing.T) {
	c, err := ParseCase("<!-- expect: -->\n<P>clean</P>\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Expect) != 0 {
		t.Errorf("expect = %v", c.Expect)
	}
}

func TestParseCaseDirectives(t *testing.T) {
	src := `<!-- expect: unknown-element -->
<!-- html-version: 3.2 -->
<!-- extension: netscape microsoft -->
<!-- pedantic -->
<HTML></HTML>`
	c, err := ParseCase(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.HTMLVersion != "3.2" {
		t.Errorf("version = %q", c.HTMLVersion)
	}
	if len(c.Extensions) != 2 || c.Extensions[0] != "netscape" {
		t.Errorf("extensions = %v", c.Extensions)
	}
	if !c.Pedantic {
		t.Error("pedantic not parsed")
	}
}

func TestParseCaseExpectSorted(t *testing.T) {
	c, err := ParseCase("<!-- expect: zebra alpha middle -->\n<P>x</P>")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(c.Expect, ",") != "alpha,middle,zebra" {
		t.Errorf("expect = %v", c.Expect)
	}
}

func TestParseCaseOrdinaryCommentEndsHeader(t *testing.T) {
	c, err := ParseCase("<!-- expect: a -->\n<!-- just a comment -->\n<!-- pedantic -->\n<P>x</P>")
	if err != nil {
		t.Fatal(err)
	}
	if c.Pedantic {
		t.Error("directive after ordinary comment must not be parsed")
	}
}

func TestParseCaseMissingExpect(t *testing.T) {
	if _, err := ParseCase("<HTML></HTML>"); err == nil {
		t.Error("sample without expect header accepted")
	}
	if _, err := ParseCase("<!-- pedantic -->\n<HTML></HTML>"); err == nil {
		t.Error("directives without expect accepted")
	}
}

func TestDiff(t *testing.T) {
	c := Case{Expect: []string{"a", "b"}}
	if problems := c.Diff([]string{"b", "a", "a"}); len(problems) != 0 {
		t.Errorf("duplicates should collapse: %v", problems)
	}
	problems := c.Diff([]string{"a", "c"})
	if len(problems) != 2 {
		t.Fatalf("problems = %v", problems)
	}
	if !strings.Contains(problems[0], "missing expected message b") {
		t.Errorf("problems[0] = %q", problems[0])
	}
	if !strings.Contains(problems[1], "unexpected message c") {
		t.Errorf("problems[1] = %q", problems[1])
	}
}

func TestLoad(t *testing.T) {
	fsys := fstest.MapFS{
		"suite/b.html":    {Data: []byte("<!-- expect: x -->\n<P>b</P>")},
		"suite/a.html":    {Data: []byte("<!-- expect: -->\n<P>a</P>")},
		"suite/notes.txt": {Data: []byte("ignored")},
	}
	cases, err := Load(fsys, "suite")
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 2 {
		t.Fatalf("cases = %d", len(cases))
	}
	if cases[0].Name != "a.html" || cases[1].Name != "b.html" {
		t.Errorf("order = %s, %s", cases[0].Name, cases[1].Name)
	}
}

func TestLoadBadSample(t *testing.T) {
	fsys := fstest.MapFS{
		"suite/bad.html": {Data: []byte("<P>no header</P>")},
	}
	if _, err := Load(fsys, "suite"); err == nil {
		t.Error("sample without header loaded")
	}
}
