// Package testsuite provides the support routines for weblint's
// sample-based test suite, the Go analogue of the paper's
// Weblint::Test module: "a large test set of HTML samples, which are
// believed to be valid or invalid for specific versions of HTML".
//
// A test case is an ordinary HTML file whose leading comments declare
// what checking it should produce:
//
//	<!-- expect: unknown-element odd-quotes -->
//	<!-- html-version: 3.2 -->
//	<!-- extension: netscape -->
//	<!-- pedantic -->
//
// "expect:" lists the message identifiers the checker must produce (as
// a set; an empty list means the sample must check clean). Directives
// may appear in any order; the first non-comment content ends the
// header.
package testsuite

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Case is one HTML sample with its expectations.
type Case struct {
	// Name is the file name relative to the suite root.
	Name string
	// Source is the full file content (header comments included —
	// they are valid HTML comments and part of the sample).
	Source string
	// Expect is the sorted set of message IDs the checker must
	// produce; empty means the sample must be clean.
	Expect []string
	// HTMLVersion selects the version to check against ("" =
	// default).
	HTMLVersion string
	// Extensions are vendor extensions to enable.
	Extensions []string
	// Pedantic enables every warning for this case.
	Pedantic bool
}

// Load reads every .html file under root in fsys as a Case.
func Load(fsys fs.FS, root string) ([]Case, error) {
	var cases []Case
	err := fs.WalkDir(fsys, root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".html") {
			return nil
		}
		data, err := fs.ReadFile(fsys, path)
		if err != nil {
			return err
		}
		c, err := ParseCase(string(data))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			rel = path
		}
		c.Name = filepath.ToSlash(rel)
		cases = append(cases, c)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(cases, func(i, j int) bool { return cases[i].Name < cases[j].Name })
	return cases, nil
}

// ParseCase extracts the expectation header from a sample.
func ParseCase(src string) (Case, error) {
	c := Case{Source: src}
	sawExpect := false
	rest := src
	for {
		trimmed := strings.TrimLeft(rest, " \t\r\n")
		if !strings.HasPrefix(trimmed, "<!--") {
			break
		}
		end := strings.Index(trimmed, "-->")
		if end < 0 {
			break
		}
		body := strings.TrimSpace(trimmed[4:end])
		rest = trimmed[end+3:]

		directive, value, found := strings.Cut(body, ":")
		directive = strings.TrimSpace(strings.ToLower(directive))
		value = strings.TrimSpace(value)
		switch {
		case directive == "expect" && found:
			sawExpect = true
			c.Expect = append(c.Expect, strings.Fields(value)...)
		case directive == "html-version" && found:
			c.HTMLVersion = value
		case directive == "extension" && found:
			c.Extensions = append(c.Extensions, strings.Fields(value)...)
		case directive == "pedantic" && !found:
			c.Pedantic = true
		default:
			// An ordinary leading comment: part of the sample, not
			// a directive. Stop scanning the header.
			if sawExpect {
				sort.Strings(c.Expect)
			}
			return c, nil
		}
	}
	if !sawExpect {
		return c, fmt.Errorf("testsuite: sample has no \"expect:\" header")
	}
	sort.Strings(c.Expect)
	return c, nil
}

// Diff compares the message IDs a check produced against the case's
// expectation set, returning human-readable problems (missing and
// unexpected identifiers). Duplicates are collapsed: expectations are
// about which problems are found, not how many times.
func (c *Case) Diff(gotIDs []string) []string {
	got := map[string]bool{}
	for _, id := range gotIDs {
		got[id] = true
	}
	want := map[string]bool{}
	for _, id := range c.Expect {
		want[id] = true
	}
	var problems []string
	for _, id := range c.Expect {
		if !got[id] {
			problems = append(problems, "missing expected message "+id)
		}
	}
	var unexpected []string
	for id := range got {
		if !want[id] {
			unexpected = append(unexpected, id)
		}
	}
	sort.Strings(unexpected)
	for _, id := range unexpected {
		problems = append(problems, "unexpected message "+id)
	}
	return problems
}
