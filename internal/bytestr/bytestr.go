// Package bytestr is the zero-copy boundary between []byte I/O and
// the string-typed lint pipeline.
//
// Documents arrive as []byte (os.ReadFile, HTTP bodies, upload forms)
// but the tokenizer, checker and link extractor all slice strings out
// of the source. Converting with string(data) copies the whole
// document once per check — the single largest allocation on the
// intake path. String provides the bridge without the copy.
//
// # Safety contract
//
// String(b) aliases b's backing array. The caller must not mutate b
// while any code is reading the returned string. In this codebase the
// contract is easy to honour because a check is synchronous: lint
// holds the source only for the duration of the Check* call, every
// emitted message copies the text it needs (warn.Emitter formats into
// its own buffer), and linkcheck.Scan clones extracted values — so
// once a Check* call returns, the caller may reuse or recycle the
// buffer freely. Pooled tokenizer/checker state may retain stale
// references into a recycled buffer between checks, but that state is
// Reset before it is ever read again.
package bytestr

import "unsafe"

// String returns a string view of b without copying. See the package
// comment for the aliasing contract.
func String(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// Bytes returns a []byte view of s without copying. The result must
// be treated as read-only: writing through it would mutate string
// memory, which the runtime assumes is immutable.
func Bytes(s string) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice(unsafe.StringData(s), len(s))
}
