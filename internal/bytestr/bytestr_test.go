package bytestr

import "testing"

func TestStringAliases(t *testing.T) {
	b := []byte("hello")
	s := String(b)
	if s != "hello" {
		t.Fatalf("String = %q", s)
	}
	b[0] = 'j'
	if s != "jello" {
		t.Fatalf("String does not alias its input: %q", s)
	}
}

func TestStringEmpty(t *testing.T) {
	if got := String(nil); got != "" {
		t.Fatalf("String(nil) = %q", got)
	}
	if got := String([]byte{}); got != "" {
		t.Fatalf("String(empty) = %q", got)
	}
}

func TestBytes(t *testing.T) {
	s := "abc"
	b := Bytes(s)
	if string(b) != "abc" {
		t.Fatalf("Bytes = %q", b)
	}
	if Bytes("") != nil {
		t.Fatal("Bytes(\"\") should be nil")
	}
}
