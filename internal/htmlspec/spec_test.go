package htmlspec

import (
	"strings"
	"testing"

	"weblint/internal/dtd"
)

func TestHTML40ElementCoverage(t *testing.T) {
	s := HTML40()
	// The HTML 4.0 spec defines 91 elements; plus our tagged vendor
	// extensions the table must be comfortably above that.
	standard := 0
	for _, e := range s.Elements {
		if e.Extension == "" {
			standard++
		}
	}
	if standard < 85 {
		t.Errorf("HTML 4.0 standard element count = %d, want >= 85", standard)
	}
	for _, name := range []string{
		"html", "head", "body", "title", "a", "img", "table", "form",
		"input", "textarea", "frameset", "object", "abbr", "fieldset",
	} {
		if s.Element(name) == nil {
			t.Errorf("HTML 4.0 missing element %s", name)
		}
	}
}

func TestElementLookupCaseInsensitive(t *testing.T) {
	s := HTML40()
	if s.Element("IMG") == nil || s.Element("Img") == nil || s.Element("img") == nil {
		t.Error("case-insensitive element lookup failed")
	}
	if s.Element("nosuch") != nil {
		t.Error("unknown element resolved")
	}
}

func TestEmptyElements(t *testing.T) {
	s := HTML40()
	for _, name := range []string{"br", "img", "hr", "input", "meta", "link", "base", "area", "param", "col", "frame", "isindex", "basefont"} {
		e := s.Element(name)
		if e == nil || !e.Empty {
			t.Errorf("%s should be an empty element", name)
		}
	}
	for _, name := range []string{"a", "p", "title", "td", "div"} {
		if s.Element(name).Empty {
			t.Errorf("%s should not be empty", name)
		}
	}
}

func TestOmitCloseElements(t *testing.T) {
	s := HTML40()
	for _, name := range []string{"p", "li", "dt", "dd", "td", "th", "tr", "option", "thead", "tbody", "html", "head", "body"} {
		e := s.Element(name)
		if e == nil || !e.OmitClose {
			t.Errorf("%s close tag should be omissible", name)
		}
	}
	for _, name := range []string{"a", "title", "table", "div", "em", "textarea"} {
		if s.Element(name).OmitClose {
			t.Errorf("%s close tag should be required", name)
		}
	}
}

func TestInlineVsStructural(t *testing.T) {
	s := HTML40()
	for _, name := range []string{"b", "i", "em", "strong", "a", "font", "span", "tt"} {
		if !s.Element(name).Inline {
			t.Errorf("%s should be inline", name)
		}
	}
	for _, name := range []string{"html", "head", "body", "table", "ul", "form", "div", "h1"} {
		e := s.Element(name)
		if e.Inline || !e.Structural {
			t.Errorf("%s should be structural, not inline", name)
		}
	}
}

func TestRequiredAttrs(t *testing.T) {
	s := HTML40()
	cases := map[string][]string{
		"textarea": {"cols", "rows"},
		"img":      {"src"},
		"form":     {"action"},
		"map":      {"name"},
		"area":     {"alt"},
		"applet":   {"height", "width"},
		"style":    {"type"},
		"script":   {"type"},
		"meta":     {"content"},
		"bdo":      {"dir"},
		"optgroup": {"label"},
	}
	for name, want := range cases {
		got := s.Element(name).RequiredAttrs()
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("%s required attrs = %v, want %v", name, got, want)
		}
	}
	if len(s.Element("p").RequiredAttrs()) != 0 {
		t.Error("p has required attrs")
	}
}

func TestContextTables(t *testing.T) {
	s := HTML40()
	cases := map[string][]string{
		"li":     {"ul", "ol", "dir", "menu"},
		"td":     {"tr"},
		"tr":     {"table", "thead", "tbody", "tfoot"},
		"dt":     {"dl"},
		"area":   {"map"},
		"frame":  {"frameset"},
		"legend": {"fieldset"},
		"option": {"select", "optgroup"},
		"param":  {"applet", "object"},
	}
	for name, want := range cases {
		e := s.Element(name)
		for _, p := range want {
			if !e.InContext(p) {
				t.Errorf("%s should be legal in %s", name, p)
			}
		}
		if e.InContext("body") {
			t.Errorf("%s should not be legal directly in body", name)
		}
	}
	// Unconstrained elements accept any context.
	if !s.Element("p").InContext("body") || !s.Element("p").InContext("td") {
		t.Error("p should be context-unconstrained")
	}
}

func TestImpliedEnd(t *testing.T) {
	s := HTML40()
	if !s.Element("li").ImpliedEndedBy("li") {
		t.Error("li should imply end of li")
	}
	if !s.Element("p").ImpliedEndedBy("table") || !s.Element("p").ImpliedEndedBy("h1") {
		t.Error("block elements should imply end of p")
	}
	if s.Element("p").ImpliedEndedBy("b") {
		t.Error("inline element must not imply end of p")
	}
	if !s.Element("dt").ImpliedEndedBy("dd") || !s.Element("dd").ImpliedEndedBy("dt") {
		t.Error("dt/dd should imply each other's end")
	}
	if !s.Element("head").ImpliedEndedBy("body") {
		t.Error("body should imply end of head")
	}
}

func TestDeprecatedAndObsolete(t *testing.T) {
	s := HTML40()
	for _, name := range []string{"center", "font", "u", "strike", "dir", "menu", "applet", "isindex", "basefont"} {
		e := s.Element(name)
		if !e.Deprecated || e.Replacement == "" {
			t.Errorf("%s should be deprecated with a replacement", name)
		}
	}
	for _, name := range []string{"xmp", "listing", "plaintext"} {
		e := s.Element(name)
		if !e.Obsolete || e.Replacement != "<PRE>" {
			t.Errorf("%s should be obsolete with <PRE> replacement", name)
		}
	}
	if s.Element("em").Deprecated {
		t.Error("em should not be deprecated")
	}
}

func TestVendorExtensions(t *testing.T) {
	s := HTML40()
	ns := map[string]bool{"blink": true, "nobr": true, "embed": true, "layer": true, "multicol": true, "spacer": true, "keygen": true, "wbr": true}
	ms := map[string]bool{"marquee": true, "bgsound": true, "comment": true}
	for name := range ns {
		e := s.Element(name)
		if e == nil || e.Extension != VendorNetscape {
			t.Errorf("%s should be a Netscape extension", name)
		}
	}
	for name := range ms {
		e := s.Element(name)
		if e == nil || e.Extension != VendorMicrosoft {
			t.Errorf("%s should be a Microsoft extension", name)
		}
	}
	// Extension attributes on standard elements.
	if a := s.Element("img").Attr("lowsrc"); a == nil || a.Extension != VendorNetscape {
		t.Error("IMG LOWSRC should be a Netscape extension attribute")
	}
	if a := s.Element("body").Attr("leftmargin"); a == nil || a.Extension != VendorMicrosoft {
		t.Error("BODY LEFTMARGIN should be a Microsoft extension attribute")
	}
}

func TestWithExtensions(t *testing.T) {
	s := HTML40()
	if s.ExtensionEnabled("netscape") {
		t.Error("extension enabled by default")
	}
	e := s.WithExtensions("Netscape")
	if !e.ExtensionEnabled("netscape") || !e.ExtensionEnabled("NETSCAPE") {
		t.Error("extension enablement not case-insensitive")
	}
	if s.ExtensionEnabled("netscape") {
		t.Error("WithExtensions mutated the shared base spec")
	}
	if e.Elements["img"] != s.Elements["img"] {
		t.Error("WithExtensions should share element tables, not copy them")
	}
	// Overlays accumulate without touching their parent.
	both := e.WithExtensions("Microsoft")
	if !both.ExtensionEnabled("netscape") || !both.ExtensionEnabled("microsoft") {
		t.Error("extension sets should accumulate")
	}
	if e.ExtensionEnabled("microsoft") {
		t.Error("derived overlay mutated its parent")
	}
}

func TestMemoizedSpecsShared(t *testing.T) {
	if HTML40() != HTML40() || HTML32() != HTML32() || HTML20() != HTML20() {
		t.Error("version constructors should return the shared memoized spec")
	}
	if Default() != HTML40() {
		t.Error("Default should be the shared HTML 4.0 spec")
	}
	if v, ok := ByVersion("3.2"); !ok || v != HTML32() {
		t.Error("ByVersion should return the shared memoized spec")
	}
}

func TestSharedSpecIsolation(t *testing.T) {
	// Two overlays over the same memoized base must not see each
	// other's extensions — the cross-linter contamination bug that
	// spec sharing would otherwise introduce.
	ns := HTML40().WithExtensions("netscape")
	ms := HTML40().WithExtensions("microsoft")
	if ns.ExtensionEnabled("microsoft") || ms.ExtensionEnabled("netscape") {
		t.Error("extension overlays leaked across derived specs")
	}
	if HTML40().ExtensionEnabled("netscape") || HTML40().ExtensionEnabled("microsoft") {
		t.Error("extension overlays leaked into the shared base spec")
	}
	// The shared element tables are visible through every overlay.
	if ns.Element("marquee") == nil || ms.Element("blink") == nil {
		t.Error("overlay should expose all vendor-tagged elements")
	}
}

func TestHTML32Differences(t *testing.T) {
	s32 := HTML32()
	s40 := HTML40()
	// 4.0-only elements absent from 3.2.
	for _, name := range []string{"span", "abbr", "acronym", "iframe", "frameset", "object", "fieldset", "button", "ins", "del", "q", "colgroup", "tbody"} {
		if s32.Element(name) != nil {
			t.Errorf("HTML 3.2 should not define %s", name)
		}
		if s40.Element(name) == nil {
			t.Errorf("HTML 4.0 should define %s", name)
		}
	}
	// CLASS/STYLE attributes and events are 4.0-only.
	if s32.Element("p").Attr("class") != nil {
		t.Error("HTML 3.2 P should not have CLASS")
	}
	if s40.Element("p").Attr("class") == nil {
		t.Error("HTML 4.0 P should have CLASS")
	}
	if s32.Element("a").Attr("onclick") != nil {
		t.Error("HTML 3.2 A should not have ONCLICK")
	}
	// CENTER is not deprecated in 3.2 but is in 4.0.
	if s32.Element("center").Deprecated {
		t.Error("CENTER deprecated in 3.2")
	}
	if !s40.Element("center").Deprecated {
		t.Error("CENTER not deprecated in 4.0")
	}
}

func TestHTML20Differences(t *testing.T) {
	s20 := HTML20()
	// No tables, no FONT, no stylistic 3.2 additions.
	for _, name := range []string{"table", "tr", "td", "font", "center", "div", "sub", "sup", "applet", "map", "area", "script", "style"} {
		if s20.Element(name) != nil {
			t.Errorf("HTML 2.0 should not define %s", name)
		}
	}
	// The 2.0 core is present.
	for _, name := range []string{"html", "title", "a", "img", "form", "input", "pre", "blockquote", "nextid"} {
		if s20.Element(name) == nil {
			t.Errorf("HTML 2.0 missing %s", name)
		}
	}
	// 2.0 requires SELECT NAME and TEXTAREA NAME.
	if got := strings.Join(s20.Element("select").RequiredAttrs(), ","); got != "name" {
		t.Errorf("SELECT required = %s", got)
	}
	if got := strings.Join(s20.Element("textarea").RequiredAttrs(), ","); got != "cols,name,rows" {
		t.Errorf("TEXTAREA required = %s", got)
	}
	// IMG align in 2.0 has no left/right.
	if s20.Element("img").Attr("align").ValidValue("left") {
		t.Error("IMG ALIGN=left accepted under 2.0")
	}
}

func TestByVersion(t *testing.T) {
	for _, v := range []string{"4.0", "4", "HTML4.0", "html 4.0"} {
		s, ok := ByVersion(v)
		if !ok || s.Version != "HTML 4.0" {
			t.Errorf("ByVersion(%q) = %v, %v", v, s, ok)
		}
	}
	if s, ok := ByVersion("3.2"); !ok || s.Version != "HTML 3.2" {
		t.Error("ByVersion(3.2) failed")
	}
	if s, ok := ByVersion("2.0"); !ok || s.Version != "HTML 2.0" {
		t.Error("ByVersion(2.0) failed")
	}
	if _, ok := ByVersion("5.0"); ok {
		t.Error("ByVersion accepted 5.0")
	}
	if Default().Version != "HTML 4.0" {
		t.Error("default spec is not HTML 4.0")
	}
}

func TestValidColor(t *testing.T) {
	good := []string{"#ff0000", "#FF00aa", "red", "NAVY", "Teal", "#123456"}
	bad := []string{"fffff", "#fffff", "#gggggg", "reddish", "", "#1234567", "ff0000"}
	for _, c := range good {
		if !ValidColor(c) {
			t.Errorf("ValidColor(%q) = false", c)
		}
	}
	for _, c := range bad {
		if ValidColor(c) {
			t.Errorf("ValidColor(%q) = true", c)
		}
	}
}

func TestAttrValueValidation(t *testing.T) {
	num := AttrInfo{Name: "n", Type: Number}
	if !num.ValidValue("42") || num.ValidValue("4x") || num.ValidValue("") {
		t.Error("Number validation wrong")
	}
	length := AttrInfo{Name: "l", Type: Length}
	for _, v := range []string{"10", "50%", "3*", "*"} {
		if !length.ValidValue(v) {
			t.Errorf("Length rejected %q", v)
		}
	}
	for _, v := range []string{"", "x", "%", "10px"} {
		if length.ValidValue(v) {
			t.Errorf("Length accepted %q", v)
		}
	}
	enum := AttrInfo{Name: "e", Type: Enum, Values: []string{"get", "post"}}
	if !enum.ValidValue("GET") || !enum.ValidValue("post") || enum.ValidValue("put") {
		t.Error("Enum validation wrong")
	}
	nt := AttrInfo{Name: "t", Type: NameToken}
	if !nt.ValidValue("foo-1.x") || nt.ValidValue("a b") || nt.ValidValue("") {
		t.Error("NameToken validation wrong")
	}
	any := AttrInfo{Name: "a", Type: CDATA}
	if !any.ValidValue("") || !any.ValidValue("anything at all") {
		t.Error("CDATA validation wrong")
	}
	u := AttrInfo{Name: "u", Type: URL}
	if !u.ValidValue("http://x/") {
		t.Error("URL validation wrong")
	}
}

func TestElementNamesSorted(t *testing.T) {
	names := HTML40().ElementNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted at %d: %s >= %s", i, names[i-1], names[i])
		}
	}
}

// TestFromDTDAgreement cross-checks the DTD-generated tables against
// the hand-written ones, the consistency check the paper's Section 6.1
// anticipates.
func TestFromDTDAgreement(t *testing.T) {
	gen := FromDTD(dtd.HTML40(), "HTML 4.0")
	hand := HTML40()
	for _, name := range gen.ElementNames() {
		g := gen.Element(name)
		h := hand.Element(name)
		if h == nil {
			t.Errorf("DTD defines %s; hand-written tables do not", name)
			continue
		}
		if g.Empty != h.Empty {
			t.Errorf("%s: Empty mismatch (dtd=%v hand=%v)", name, g.Empty, h.Empty)
		}
		if g.OmitClose != h.OmitClose {
			t.Errorf("%s: OmitClose mismatch (dtd=%v hand=%v)", name, g.OmitClose, h.OmitClose)
		}
		// Required attributes must agree where the DTD subset
		// declares the element's ATTLIST — with one deliberate
		// divergence: the HTML 4.0 DTD makes IMG ALT #REQUIRED,
		// but weblint reports missing ALT as the softer img-alt
		// warning rather than a required-attribute error, so the
		// hand table leaves ALT optional.
		if len(g.Attrs) > 0 {
			gr := strings.Join(g.RequiredAttrs(), ",")
			hr := strings.Join(h.RequiredAttrs(), ",")
			if name == "img" {
				if gr != "alt,src" || hr != "src" {
					t.Errorf("img divergence changed: dtd=%s hand=%s", gr, hr)
				}
				continue
			}
			if gr != hr {
				t.Errorf("%s: required attrs differ (dtd=%s hand=%s)", name, gr, hr)
			}
		}
	}
}

func TestFromDTDBehaviourFlags(t *testing.T) {
	gen := FromDTD(dtd.HTML40(), "HTML 4.0")
	if !gen.Element("a").Inline || !gen.Element("a").NoSelfNest {
		t.Error("A should be inline and non-self-nesting from DTD -(A)")
	}
	if !gen.Element("table").Structural {
		t.Error("TABLE should be structural")
	}
	if !gen.Element("title").OnceOnly || !gen.Element("title").HeadOnly {
		t.Error("TITLE behaviour flags missing")
	}
	if !gen.HTML40 {
		t.Error("version flag not derived")
	}
}
