// Package htmlspec encapsulates the information weblint needs when
// checking against a specific version of HTML: the valid elements and
// their content behaviour (are they containers? may their close tag be
// omitted?), the valid attributes and legal values for attributes, and
// the legal context for elements.
//
// The package is the Go analogue of the paper's Weblint::HTML40 module
// and friends: sets of tables which drive the operation of the checker.
// Hand-authored tables are provided for HTML 3.2 and HTML 4.0, with the
// Netscape and Microsoft extensions layered in as vendor-tagged entries
// (enable an extension to accept its markup silently; leave it disabled
// to have uses of it reported).
//
// # Immutability and sharing
//
// The HTML20, HTML32 and HTML40 version tables are built exactly once,
// on first use, and the same *Spec is returned to every caller — the
// constructors are O(1) after the first call, which keeps building a
// Linter cheap enough for per-request use. In exchange, a Spec and
// everything reachable from it (ElementInfo, AttrInfo, the slices they
// hold) is immutable: callers must never modify a Spec obtained from
// this package. Per-linter variation is expressed as an overlay: the
// WithExtensions method returns a shallow copy carrying its own
// extension-enablement set while sharing the element tables, so two
// linters with different extensions enabled never observe each other's
// configuration.
package htmlspec

import (
	"strings"
	"sync"

	"weblint/internal/ascii"
)

// ValueType classifies how an attribute's value is validated.
type ValueType int

const (
	// CDATA accepts any value.
	CDATA ValueType = iota
	// Color accepts a color name or #rrggbb triplet.
	Color
	// Number accepts a non-empty string of digits.
	Number
	// Length accepts digits optionally followed by '%' or '*'.
	Length
	// MultiLength accepts a comma-separated list of lengths, the
	// form FRAMESET ROWS/COLS take ("50%,50%" or "1*,2*,100").
	MultiLength
	// URL accepts any value; URL scheme problems are diagnosed
	// separately by the checker.
	URL
	// NameToken accepts an SGML name token.
	NameToken
	// Enum accepts one of an explicit, case-insensitive value list.
	Enum
)

// AttrInfo describes one attribute of an element.
type AttrInfo struct {
	// Name is the attribute name, lower-case.
	Name string
	// Type selects the value validator.
	Type ValueType
	// Values is the legal value list for Enum attributes.
	Values []string
	// Required reports that the attribute must be present on the tag.
	Required bool
	// Deprecated reports the attribute is deprecated in this HTML
	// version (usually in favour of style sheets).
	Deprecated bool
	// Extension names the vendor ("Netscape", "Microsoft") when the
	// attribute is not part of standard HTML, or is empty.
	Extension string
}

// ValidValue reports whether v is legal for the attribute.
func (a *AttrInfo) ValidValue(v string) bool {
	switch a.Type {
	case CDATA, URL:
		return true
	case Color:
		return ValidColor(v)
	case Number:
		return isDigits(v)
	case Length:
		return validLength(v)
	case MultiLength:
		if v == "" {
			return false
		}
		for _, part := range strings.Split(v, ",") {
			if !validLength(strings.TrimSpace(part)) {
				return false
			}
		}
		return true
	case NameToken:
		return isNameToken(v)
	case Enum:
		for _, ok := range a.Values {
			if strings.EqualFold(v, ok) {
				return true
			}
		}
		return false
	}
	return true
}

// ElementInfo describes one element of an HTML version.
type ElementInfo struct {
	// Name is the canonical element name, lower-case.
	Name string
	// Empty reports that the element has no content and no close tag
	// (BR, IMG, HR, ...).
	Empty bool
	// OmitClose reports that the close tag may legally be omitted
	// (P, LI, TD, ...); such elements pop silently when implied
	// closed.
	OmitClose bool
	// Inline reports phrase/font-level markup (B, I, EM, A, ...).
	// The overlap heuristic reports inline close tags that cross
	// other elements as element-overlap.
	Inline bool
	// Structural reports structural containers (HTML, HEAD, TABLE,
	// lists, ...) whose close tags force intervening unclosed
	// elements to be reported as unclosed-element.
	Structural bool
	// OnceOnly reports elements which may appear at most once per
	// document (HTML, HEAD, BODY, TITLE).
	OnceOnly bool
	// HeadOnly reports elements which belong in the HEAD.
	HeadOnly bool
	// FormField reports form controls which should appear inside a
	// FORM element.
	FormField bool
	// Deprecated and Obsolete report the element's status in this
	// HTML version; Replacement names the suggested substitute.
	Deprecated  bool
	Obsolete    bool
	Replacement string
	// Context lists the only parents (lower-case element names) the
	// element may directly appear in; empty means unconstrained.
	Context []string
	// ImpliedEndBy lists sibling elements whose start tag implies
	// this element's end (LI ends LI, DT/DD end each other, ...).
	ImpliedEndBy []string
	// NoSelfNest reports elements which may not be nested within
	// themselves (A, FORM, LABEL).
	NoSelfNest bool
	// EmptyOK suppresses the empty-container check for containers
	// which are legitimately empty (TD, TEXTAREA, ...).
	EmptyOK bool
	// Attrs maps lower-case attribute names to their definitions.
	Attrs map[string]*AttrInfo
	// Extension names the vendor when the element is not part of
	// standard HTML.
	Extension string

	// requiredAttrs is the precomputed RequiredAttrs result, filled
	// by Spec.finalize so the hot path never re-derives it.
	requiredAttrs []string
	reqDone       bool
}

// Attr returns the definition of the named attribute
// (case-insensitively), or nil when the attribute is not defined for
// the element. Lookups with an already lower-case name never allocate.
func (e *ElementInfo) Attr(name string) *AttrInfo {
	return foldLookup(e.Attrs, name)
}

// RequiredAttrs returns the names of all required attributes, sorted.
// For specs built by this package the list is precomputed once;
// callers must treat it as read-only.
func (e *ElementInfo) RequiredAttrs() []string {
	if e.reqDone {
		return e.requiredAttrs
	}
	return requiredAttrsOf(e)
}

// requiredAttrsOf computes the sorted required-attribute list.
func requiredAttrsOf(e *ElementInfo) []string {
	var out []string
	for _, a := range e.Attrs {
		if a.Required {
			out = append(out, a.Name)
		}
	}
	sortStrings(out)
	return out
}

// ImpliedEndedBy reports whether an opening tag for other implies the
// end of this element.
func (e *ElementInfo) ImpliedEndedBy(other string) bool {
	for _, n := range e.ImpliedEndBy {
		if n == other {
			return true
		}
	}
	return false
}

// InContext reports whether parent is a legal direct parent. It is
// always true for elements with unconstrained context.
func (e *ElementInfo) InContext(parent string) bool {
	if len(e.Context) == 0 {
		return true
	}
	for _, p := range e.Context {
		if p == parent {
			return true
		}
	}
	return false
}

// maxFoldKey is the longest name the zero-allocation case-folding map
// lookups handle on the stack; longer names fall back to
// strings.ToLower.
const maxFoldKey = 32

// foldLookup is the shared zero-allocation case-insensitive map
// lookup: exact hit first; no second probe when a miss is already
// lower-case (folding would produce the same key); a stack-buffer fold
// for names up to maxFoldKey; strings.ToLower beyond that.
func foldLookup[V any](m map[string]V, name string) V {
	if v, ok := m[name]; ok {
		return v
	}
	if ascii.IsLower(name) {
		var zero V
		return zero
	}
	if len(name) <= maxFoldKey {
		var buf [maxFoldKey]byte
		return m[string(ascii.AppendLower(buf[:0], name))]
	}
	return m[strings.ToLower(name)]
}

// Spec is a complete description of one HTML version, optionally with
// vendor extensions enabled. Specs returned by this package are shared
// and immutable — see the package comment; derive per-linter variants
// with WithExtensions instead of mutating.
type Spec struct {
	// Version is the human name, e.g. "HTML 4.0".
	Version string
	// HTML40 selects the HTML 4.0 entity set for entity checking.
	HTML40 bool
	// Elements maps lower-case element names to their definitions.
	Elements map[string]*ElementInfo
	// EnabledExtensions marks vendor extensions (lower-case keys)
	// which have been enabled; markup from enabled vendors is
	// accepted silently. It is owned by exactly one Spec value:
	// WithExtensions copies it, never shares it.
	EnabledExtensions map[string]bool

	// displays maps lower-case element names to their upper-case
	// display form, precomputed so the checker does not re-uppercase
	// every tag it reports on.
	displays map[string]string
}

// Element looks up an element by name, case-insensitively. It returns
// nil for unknown elements. Lookups with an already lower-case name
// never allocate.
func (s *Spec) Element(name string) *ElementInfo {
	return foldLookup(s.Elements, name)
}

// Display returns the upper-case display form of an element name the
// way weblint prints it in messages (lower-case "img" → "IMG").
// Known element names resolve from a precomputed table without
// allocating.
func (s *Spec) Display(name string) string {
	if d, ok := s.displays[name]; ok {
		return d
	}
	return ascii.ToUpper(name)
}

// WithExtensions returns a spec with the given vendor extensions
// ("netscape", "microsoft"; case-insensitive) enabled in addition to
// any already enabled on s. The element tables are shared, not copied;
// s itself is not modified, so the shared memoized specs stay pristine.
// Unknown extension names are accepted and recorded so configuration
// remains forward-compatible. With no vendors to add, s is returned
// unchanged.
func (s *Spec) WithExtensions(vendors ...string) *Spec {
	if len(vendors) == 0 {
		return s
	}
	c := *s
	c.EnabledExtensions = make(map[string]bool, len(s.EnabledExtensions)+len(vendors))
	for v := range s.EnabledExtensions {
		c.EnabledExtensions[v] = true
	}
	for _, v := range vendors {
		c.EnabledExtensions[ascii.ToLower(v)] = true
	}
	return &c
}

// ExtensionEnabled reports whether the vendor's extension is enabled
// (case-insensitive). It never allocates, so the checker can consult
// it per vendor-tagged element or attribute.
func (s *Spec) ExtensionEnabled(vendor string) bool {
	if len(s.EnabledExtensions) == 0 {
		return false
	}
	return foldLookup(s.EnabledExtensions, vendor)
}

// finalize precomputes the hot-path caches (required-attribute lists,
// display names) after a spec's tables are fully built. It must be
// called before the spec is shared; finalized specs are immutable.
func (s *Spec) finalize() *Spec {
	s.displays = make(map[string]string, len(s.Elements))
	for name, e := range s.Elements {
		e.requiredAttrs = requiredAttrsOf(e)
		e.reqDone = true
		s.displays[name] = strings.ToUpper(name)
	}
	return s
}

// ElementNames returns all element names in the spec, sorted.
func (s *Spec) ElementNames() []string {
	out := make([]string, 0, len(s.Elements))
	for n := range s.Elements {
		out = append(out, n)
	}
	sortStrings(out)
	return out
}

// Memoization: each version table is built exactly once and shared.
// The builders run a few hundred microseconds and allocate the whole
// element graph; doing that per lint.New made constructing a linter
// the most expensive step of a gateway request.
var (
	html20Once, html32Once, html40Once sync.Once
	html20Spec, html32Spec, html40Spec *Spec
)

// HTML20 returns the shared, immutable HTML 2.0 spec. The tables are
// built on first use; every call returns the same *Spec.
func HTML20() *Spec {
	html20Once.Do(func() { html20Spec = buildHTML20().finalize() })
	return html20Spec
}

// HTML32 returns the shared, immutable HTML 3.2 spec.
func HTML32() *Spec {
	html32Once.Do(func() { html32Spec = buildHTML32().finalize() })
	return html32Spec
}

// HTML40 returns the shared, immutable HTML 4.0 transitional spec
// (with frameset elements), the version weblint checks against by
// default.
func HTML40() *Spec {
	html40Once.Do(func() { html40Spec = buildHTML40().finalize() })
	return html40Spec
}

// Default returns the spec weblint checks against when not otherwise
// configured: HTML 4.0, as in the paper ("By default Weblint will check
// against HTML 4.0").
func Default() *Spec { return HTML40() }

// ByVersion returns the spec for a version string ("4.0", "html4.0",
// "3.2", "2.0", ...). The boolean result reports whether the version
// is known.
func ByVersion(v string) (*Spec, bool) {
	switch strings.ToLower(strings.TrimSpace(strings.TrimPrefix(strings.ToLower(v), "html"))) {
	case "4.0", "4", "40":
		return HTML40(), true
	case "3.2", "3", "32":
		return HTML32(), true
	case "2.0", "2", "20":
		return HTML20(), true
	}
	return nil, false
}

// ----------------------------------------------------------------
// Table construction helpers. These keep the HTML version tables
// compact and declarative.
// ----------------------------------------------------------------

// eb is an element builder.
type eb struct{ e *ElementInfo }

func elem(name string) *eb {
	return &eb{&ElementInfo{Name: name, Attrs: map[string]*AttrInfo{}}}
}

func (x *eb) empty() *eb          { x.e.Empty = true; return x }
func (x *eb) omit() *eb           { x.e.OmitClose = true; return x }
func (x *eb) inline() *eb         { x.e.Inline = true; return x }
func (x *eb) structural() *eb     { x.e.Structural = true; return x }
func (x *eb) once() *eb           { x.e.OnceOnly = true; return x }
func (x *eb) head() *eb           { x.e.HeadOnly = true; return x }
func (x *eb) formField() *eb      { x.e.FormField = true; return x }
func (x *eb) noSelfNest() *eb     { x.e.NoSelfNest = true; return x }
func (x *eb) emptyOK() *eb        { x.e.EmptyOK = true; return x }
func (x *eb) vendor(v string) *eb { x.e.Extension = v; return x }
func (x *eb) context(p ...string) *eb {
	x.e.Context = p
	return x
}
func (x *eb) impliedEnd(names ...string) *eb {
	x.e.ImpliedEndBy = names
	return x
}
func (x *eb) deprecated(repl string) *eb {
	x.e.Deprecated = true
	x.e.Replacement = repl
	return x
}
func (x *eb) obsolete(repl string) *eb {
	x.e.Obsolete = true
	x.e.Replacement = repl
	return x
}
func (x *eb) attrs(groups ...[]AttrInfo) *eb {
	for _, g := range groups {
		for i := range g {
			a := g[i]
			x.e.Attrs[a.Name] = &a
		}
	}
	return x
}

// add registers the built element into a spec map.
func add(m map[string]*ElementInfo, builders ...*eb) {
	for _, x := range builders {
		m[x.e.Name] = x.e
	}
}

// pruneImpliedEnds drops implied-end triggers that the version does
// not define (the shared blockLevel list is written for HTML 4.0;
// earlier versions lack some of its members).
func pruneImpliedEnds(m map[string]*ElementInfo) {
	for _, e := range m {
		if len(e.ImpliedEndBy) == 0 {
			continue
		}
		kept := e.ImpliedEndBy[:0:0]
		for _, name := range e.ImpliedEndBy {
			if _, ok := m[name]; ok {
				kept = append(kept, name)
			}
		}
		e.ImpliedEndBy = kept
	}
}

// Attribute constructors.

func a(name string) AttrInfo    { return AttrInfo{Name: name, Type: CDATA} }
func aURL(name string) AttrInfo { return AttrInfo{Name: name, Type: URL} }
func aNum(name string) AttrInfo { return AttrInfo{Name: name, Type: Number} }
func aLen(name string) AttrInfo { return AttrInfo{Name: name, Type: Length} }
func aMultiLen(name string) AttrInfo {
	return AttrInfo{Name: name, Type: MultiLength}
}
func aColor(name string) AttrInfo   { return AttrInfo{Name: name, Type: Color} }
func aNameTok(name string) AttrInfo { return AttrInfo{Name: name, Type: NameToken} }
func aEnum(name string, vals ...string) AttrInfo {
	return AttrInfo{Name: name, Type: Enum, Values: vals}
}

// req marks an attribute required.
func req(ai AttrInfo) AttrInfo { ai.Required = true; return ai }

// dep marks an attribute deprecated.
func dep(ai AttrInfo) AttrInfo { ai.Deprecated = true; return ai }

// ext marks an attribute as a vendor extension.
func ext(vendor string, ai AttrInfo) AttrInfo { ai.Extension = vendor; return ai }

// group bundles attribute constructors into a reusable set.
func group(as ...AttrInfo) []AttrInfo { return as }

// validLength accepts digits optionally followed by '%' or '*', and a
// bare '*' (relative remainder).
func validLength(v string) bool {
	if v == "" {
		return false
	}
	body := v
	if strings.HasSuffix(v, "%") || strings.HasSuffix(v, "*") {
		body = v[:len(v)-1]
	}
	if body == "" && strings.HasSuffix(v, "*") {
		return true
	}
	return isDigits(body)
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

func isNameToken(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '.' || c == '_' || c == ':':
		default:
			return false
		}
	}
	return true
}

// colorNames are the sixteen color names defined by HTML 4.0.
var colorNames = map[string]bool{
	"aqua": true, "black": true, "blue": true, "fuchsia": true,
	"gray": true, "green": true, "lime": true, "maroon": true,
	"navy": true, "olive": true, "purple": true, "red": true,
	"silver": true, "teal": true, "white": true, "yellow": true,
}

// ValidColor reports whether v is a legal HTML color value: one of the
// sixteen HTML 4.0 color names, or an RGB triplet of the form #rrggbb.
func ValidColor(v string) bool {
	if colorNames[strings.ToLower(v)] {
		return true
	}
	if len(v) != 7 || v[0] != '#' {
		return false
	}
	for i := 1; i < 7; i++ {
		c := v[i]
		ok := c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
		if !ok {
			return false
		}
	}
	return true
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
