package htmlspec

// Vendor extensions: the non-standard elements and attributes
// supported by Netscape Navigator and Microsoft Internet Explorer, as
// the paper's "other modules define the non-standard extensions
// supported by Microsoft (Internet Explorer) and Netscape (Navigator)".
//
// Extension entries are present in every spec, tagged with their
// vendor. When the extension is not enabled the checker reports uses
// of them with extension-markup / extension-attribute (rather than the
// harsher unknown-element); enabling the extension accepts them
// silently.

const (
	// VendorNetscape tags Netscape Navigator extensions.
	VendorNetscape = "Netscape"
	// VendorMicrosoft tags Microsoft Internet Explorer extensions.
	VendorMicrosoft = "Microsoft"
)

// Vendors lists the known extension vendors in a stable order.
var Vendors = []string{VendorNetscape, VendorMicrosoft}

// addVendorExtensions layers the Netscape and Microsoft elements and
// attributes into a base spec.
func addVendorExtensions(s *Spec) {
	m := s.Elements

	// ---- Netscape Navigator elements ----
	add(m,
		elem("blink").inline().vendor(VendorNetscape),
		elem("nobr").inline().vendor(VendorNetscape),
		elem("wbr").empty().vendor(VendorNetscape),
		elem("embed").empty().vendor(VendorNetscape).
			attrs(group(
				aURL("src"), aLen("width"), aLen("height"), a("type"),
				a("name"), a("palette"), aURL("pluginspage"),
				a("hidden"), a("autostart"), a("loop"),
			)),
		elem("noembed").vendor(VendorNetscape),
		elem("layer").vendor(VendorNetscape).
			attrs(group(
				aNameTok("id"), a("name"), aNum("left"), aNum("top"),
				aNum("z-index"), aEnum("visibility", "show", "hide", "inherit"),
				aColor("bgcolor"), aURL("background"), aURL("src"),
				aLen("width"), aLen("height"),
			)),
		elem("ilayer").vendor(VendorNetscape).
			attrs(group(
				aNameTok("id"), a("name"), aNum("left"), aNum("top"),
				aColor("bgcolor"), aURL("src"), aLen("width"), aLen("height"),
			)),
		elem("nolayer").vendor(VendorNetscape),
		elem("multicol").vendor(VendorNetscape).
			attrs(group(req(aNum("cols")), aNum("gutter"), aLen("width"))),
		elem("spacer").empty().vendor(VendorNetscape).
			attrs(group(
				aEnum("type", "horizontal", "vertical", "block"),
				aNum("size"), aLen("width"), aLen("height"),
				aEnum("align", "top", "middle", "bottom", "left", "right"),
			)),
		elem("keygen").empty().vendor(VendorNetscape).
			attrs(group(req(a("name")), a("challenge"))),
		elem("server").vendor(VendorNetscape),
	)

	// ---- Microsoft Internet Explorer elements ----
	add(m,
		elem("marquee").vendor(VendorMicrosoft).
			attrs(group(
				aEnum("behavior", "scroll", "slide", "alternate"),
				aColor("bgcolor"),
				aEnum("direction", "left", "right", "up", "down"),
				aLen("height"), aLen("width"), aNum("hspace"), aNum("vspace"),
				a("loop"), aNum("scrollamount"), aNum("scrolldelay"),
			)),
		elem("bgsound").empty().vendor(VendorMicrosoft).
			attrs(group(req(aURL("src")), a("loop"), aNum("balance"), aNum("volume"))),
		elem("comment").vendor(VendorMicrosoft),
	)

	// ---- Netscape attributes on standard elements ----
	addAttr(m, "img", ext(VendorNetscape, aURL("lowsrc")))
	addAttr(m, "body", ext(VendorNetscape, aNum("marginwidth")))
	addAttr(m, "body", ext(VendorNetscape, aNum("marginheight")))
	addAttr(m, "table", ext(VendorNetscape, aLen("height")))
	addAttr(m, "frameset", ext(VendorNetscape, aNum("border")))
	addAttr(m, "frameset", ext(VendorNetscape, aColor("bordercolor")))
	addAttr(m, "frame", ext(VendorNetscape, aColor("bordercolor")))
	addAttr(m, "input", ext(VendorNetscape, a("onfocus")))

	// ---- Microsoft attributes on standard elements ----
	addAttr(m, "body", ext(VendorMicrosoft, aNum("leftmargin")))
	addAttr(m, "body", ext(VendorMicrosoft, aNum("topmargin")))
	addAttr(m, "body", ext(VendorMicrosoft, aNum("rightmargin")))
	addAttr(m, "body", ext(VendorMicrosoft, aNum("bottommargin")))
	addAttr(m, "body", ext(VendorMicrosoft, aEnum("bgproperties", "fixed")))
	addAttr(m, "table", ext(VendorMicrosoft, aColor("bordercolor")))
	addAttr(m, "table", ext(VendorMicrosoft, aColor("bordercolorlight")))
	addAttr(m, "table", ext(VendorMicrosoft, aColor("bordercolordark")))
	addAttr(m, "table", ext(VendorMicrosoft, aURL("background")))
	addAttr(m, "td", ext(VendorMicrosoft, aColor("bordercolor")))
	addAttr(m, "td", ext(VendorMicrosoft, aURL("background")))
	addAttr(m, "th", ext(VendorMicrosoft, aColor("bordercolor")))
	addAttr(m, "tr", ext(VendorMicrosoft, aColor("bordercolor")))
	addAttr(m, "hr", ext(VendorMicrosoft, aColor("color")))
	addAttr(m, "img", ext(VendorMicrosoft, aURL("dynsrc")))
	addAttr(m, "img", ext(VendorMicrosoft, a("loop")))
	addAttr(m, "img", ext(VendorMicrosoft, aEnum("start", "fileopen", "mouseover")))
	addAttr(m, "marquee", ext(VendorMicrosoft, a("truespeed")))
}

// addAttr adds one attribute to an element's table if the element is
// present in the spec (HTML 3.2 lacks some elements HTML 4.0 has).
func addAttr(m map[string]*ElementInfo, elemName string, ai AttrInfo) {
	e, ok := m[elemName]
	if !ok {
		return
	}
	if _, exists := e.Attrs[ai.Name]; exists {
		return // standard attribute wins over a vendor copy
	}
	a := ai
	e.Attrs[a.Name] = &a
}
