package htmlspec

// The HTML 3.2 tables. HTML 3.2 predates the CLASS/STYLE attributes
// and intrinsic events, and does not deprecate presentational markup
// (CENTER, FONT, the BODY color attributes), so its attribute sets are
// noticeably smaller than HTML 4.0's.

func core32() []AttrInfo { return group(aNameTok("id")) } // ID only where noted

// buildHTML32 constructs the HTML 3.2 element tables. Called once,
// via the memoized HTML32.
func buildHTML32() *Spec {
	m := map[string]*ElementInfo{}

	align3 := group(aEnum("align", "left", "center", "right"))

	add(m,
		elem("html").once().structural().omit().attrs(group(dep(a("version")))),
		elem("head").once().structural().omit().context("html").impliedEnd("body"),
		elem("body").once().structural().omit().context("html").
			attrs(group(
				aURL("background"), aColor("bgcolor"), aColor("text"),
				aColor("link"), aColor("vlink"), aColor("alink"),
			)),
		elem("title").once().head(),
		elem("isindex").empty().attrs(group(a("prompt"))),
		elem("base").empty().head().attrs(group(req(aURL("href")))),
		elem("meta").empty().head().
			attrs(group(a("http-equiv"), a("name"), req(a("content")))),
		elem("link").empty().head().
			attrs(group(aURL("href"), a("rel"), a("rev"), a("title"))),
		elem("script").head(),
		elem("style").head(),
	)

	add(m,
		elem("h1").structural().attrs(align3),
		elem("h2").structural().attrs(align3),
		elem("h3").structural().attrs(align3),
		elem("h4").structural().attrs(align3),
		elem("h5").structural().attrs(align3),
		elem("h6").structural().attrs(align3),
		elem("p").omit().impliedEnd(blockLevel...).attrs(align3),
		elem("div").structural().attrs(align3),
		elem("address").structural(),
		elem("blockquote").structural(),
		elem("pre").structural().attrs(group(aNum("width"))),
		elem("center").structural(),
		elem("hr").empty().
			attrs(group(
				aEnum("align", "left", "center", "right"),
				a("noshade"), aNum("size"), aLen("width"),
			)),
		elem("br").empty().
			attrs(group(aEnum("clear", "left", "all", "right", "none"))),
		elem("xmp").obsolete("<PRE>"),
		elem("listing").obsolete("<PRE>"),
		elem("plaintext").obsolete("<PRE>"),
	)

	add(m,
		elem("ul").structural().
			attrs(group(aEnum("type", "disc", "square", "circle"), a("compact"))),
		elem("ol").structural().
			attrs(group(a("type"), aNum("start"), a("compact"))),
		elem("li").omit().context("ul", "ol", "dir", "menu").impliedEnd("li").
			attrs(group(a("type"), aNum("value"))),
		elem("dl").structural().attrs(group(a("compact"))),
		elem("dt").omit().context("dl").impliedEnd("dt", "dd"),
		elem("dd").omit().context("dl").impliedEnd("dt", "dd"),
		elem("dir").structural().attrs(group(a("compact"))),
		elem("menu").structural().attrs(group(a("compact"))),
	)

	add(m,
		elem("em").inline(),
		elem("strong").inline(),
		elem("dfn").inline(),
		elem("code").inline(),
		elem("samp").inline(),
		elem("kbd").inline(),
		elem("var").inline(),
		elem("cite").inline(),
		elem("tt").inline(),
		elem("i").inline(),
		elem("b").inline(),
		elem("u").inline(),
		elem("strike").inline(),
		elem("big").inline(),
		elem("small").inline(),
		elem("sub").inline(),
		elem("sup").inline(),
		elem("font").inline().attrs(group(a("size"), aColor("color"))),
		elem("basefont").empty().attrs(group(req(a("size")))),
	)

	add(m,
		elem("a").inline().noSelfNest().
			attrs(group(a("name"), aURL("href"), a("rel"), a("rev"), a("title"))),
		elem("img").empty().
			attrs(group(
				req(aURL("src")), a("alt"),
				aEnum("align", "top", "middle", "bottom", "left", "right"),
				aLen("height"), aLen("width"), aLen("border"),
				aNum("hspace"), aNum("vspace"), aURL("usemap"), a("ismap"),
			)),
		elem("map").noSelfNest().attrs(group(req(a("name")))),
		elem("area").empty().context("map").
			attrs(group(
				aEnum("shape", "rect", "circle", "poly", "default"),
				a("coords"), aURL("href"), a("nohref"), req(a("alt")),
			)),
		elem("applet").
			attrs(core32(), group(
				aURL("codebase"), req(a("code")), a("alt"), a("name"),
				req(aLen("width")), req(aLen("height")),
				aEnum("align", "top", "middle", "bottom", "left", "right"),
				aNum("hspace"), aNum("vspace"),
			)),
		elem("param").empty().context("applet").
			attrs(group(req(a("name")), a("value"))),
	)

	add(m,
		elem("table").structural().
			attrs(group(
				aEnum("align", "left", "center", "right"),
				aLen("width"), aNum("border"),
				aLen("cellspacing"), aLen("cellpadding"),
			)),
		elem("caption").context("table").
			attrs(group(aEnum("align", "top", "bottom"))),
		elem("tr").omit().structural().context("table").impliedEnd("tr").
			attrs(group(
				aEnum("align", "left", "center", "right"),
				aEnum("valign", "top", "middle", "bottom", "baseline"),
			)),
		elem("td").omit().emptyOK().context("tr").impliedEnd("td", "th", "tr").
			attrs(group(
				a("nowrap"), aNum("rowspan"), aNum("colspan"),
				aEnum("align", "left", "center", "right"),
				aEnum("valign", "top", "middle", "bottom", "baseline"),
				aLen("width"), aLen("height"),
			)),
		elem("th").omit().emptyOK().context("tr").impliedEnd("td", "th", "tr").
			attrs(group(
				a("nowrap"), aNum("rowspan"), aNum("colspan"),
				aEnum("align", "left", "center", "right"),
				aEnum("valign", "top", "middle", "bottom", "baseline"),
				aLen("width"), aLen("height"),
			)),
	)

	add(m,
		elem("form").structural().noSelfNest().
			attrs(group(req(aURL("action")), aEnum("method", "get", "post"), a("enctype"))),
		elem("input").empty().formField().
			attrs(group(
				aEnum("type", "text", "password", "checkbox", "radio",
					"submit", "reset", "file", "hidden", "image"),
				a("name"), a("value"), a("checked"), a("size"),
				aNum("maxlength"), aURL("src"),
				aEnum("align", "top", "middle", "bottom", "left", "right"),
			)),
		elem("select").formField().
			attrs(group(a("name"), aNum("size"), a("multiple"))),
		elem("option").omit().emptyOK().context("select").impliedEnd("option").
			attrs(group(a("selected"), a("value"))),
		elem("textarea").formField().emptyOK().
			attrs(group(a("name"), req(aNum("rows")), req(aNum("cols")))),
	)

	spec := &Spec{
		Version:           "HTML 3.2",
		HTML40:            false,
		Elements:          m,
		EnabledExtensions: map[string]bool{},
	}
	pruneImpliedEnds(m)
	addVendorExtensions(spec)
	return spec
}
