package htmlspec

// The HTML 2.0 (RFC 1866) tables: the language as it stood when
// weblint's first versions were released in 1994/95. No tables, no
// FONT, no DIV/CENTER, no CLASS/ID — checking a modern page against
// 2.0 is the strictest portability test the tool offers.

// buildHTML20 constructs the HTML 2.0 element tables. Called once,
// via the memoized HTML20.
func buildHTML20() *Spec {
	m := map[string]*ElementInfo{}

	add(m,
		elem("html").once().structural().omit().attrs(group(dep(a("version")))),
		elem("head").once().structural().omit().context("html").impliedEnd("body"),
		elem("body").once().structural().omit().context("html"),
		elem("title").once().head(),
		elem("isindex").empty().attrs(group(a("prompt"))),
		elem("base").empty().head().attrs(group(req(aURL("href")))),
		elem("meta").empty().head().
			attrs(group(a("http-equiv"), a("name"), req(a("content")))),
		elem("link").empty().head().
			attrs(group(aURL("href"), a("rel"), a("rev"), a("title"), a("urn"), a("methods"))),
		elem("nextid").empty().head().attrs(group(req(aNameTok("n")))),
	)

	add(m,
		elem("h1").structural(),
		elem("h2").structural(),
		elem("h3").structural(),
		elem("h4").structural(),
		elem("h5").structural(),
		elem("h6").structural(),
		elem("p").omit().impliedEnd(blockLevel...),
		elem("address").structural(),
		elem("blockquote").structural(),
		elem("pre").structural().attrs(group(aNum("width"))),
		elem("hr").empty(),
		elem("br").empty(),
		elem("xmp").obsolete("<PRE>"),
		elem("listing").obsolete("<PRE>"),
		elem("plaintext").obsolete("<PRE>"),
	)

	add(m,
		elem("ul").structural().attrs(group(a("compact"))),
		elem("ol").structural().attrs(group(a("compact"))),
		elem("li").omit().context("ul", "ol", "dir", "menu").impliedEnd("li"),
		elem("dl").structural().attrs(group(a("compact"))),
		elem("dt").omit().context("dl").impliedEnd("dt", "dd"),
		elem("dd").omit().context("dl").impliedEnd("dt", "dd"),
		elem("dir").structural().attrs(group(a("compact"))),
		elem("menu").structural().attrs(group(a("compact"))),
	)

	add(m,
		elem("em").inline(),
		elem("strong").inline(),
		elem("dfn").inline(),
		elem("code").inline(),
		elem("samp").inline(),
		elem("kbd").inline(),
		elem("var").inline(),
		elem("cite").inline(),
		elem("tt").inline(),
		elem("i").inline(),
		elem("b").inline(),
	)

	add(m,
		elem("a").inline().noSelfNest().
			attrs(group(
				aURL("href"), a("name"), a("rel"), a("rev"),
				a("urn"), a("title"), a("methods"),
			)),
		elem("img").empty().
			attrs(group(
				req(aURL("src")), a("alt"),
				aEnum("align", "top", "middle", "bottom"), a("ismap"),
			)),
	)

	add(m,
		elem("form").structural().noSelfNest().
			attrs(group(req(aURL("action")), aEnum("method", "get", "post"), a("enctype"))),
		elem("input").empty().formField().
			attrs(group(
				aEnum("type", "text", "password", "checkbox", "radio",
					"submit", "reset", "image", "hidden"),
				a("name"), a("value"), a("checked"), a("size"),
				aNum("maxlength"), aURL("src"),
				aEnum("align", "top", "middle", "bottom"),
			)),
		elem("select").formField().
			attrs(group(req(a("name")), aNum("size"), a("multiple"))),
		elem("option").omit().emptyOK().context("select").impliedEnd("option").
			attrs(group(a("selected"), a("value"))),
		elem("textarea").formField().emptyOK().
			attrs(group(req(a("name")), req(aNum("rows")), req(aNum("cols")))),
	)

	spec := &Spec{
		Version:           "HTML 2.0",
		HTML40:            false,
		Elements:          m,
		EnabledExtensions: map[string]bool{},
	}
	pruneImpliedEnds(m)
	addVendorExtensions(spec)
	return spec
}
