package htmlspec

// The HTML 4.0 (transitional, including frameset elements) tables.
// Deprecated elements and attributes are present and marked, so that
// checking reports them rather than calling them unknown.

// Attribute groups shared across the HTML 4.0 element table.

func coreattrs() []AttrInfo {
	return group(aNameTok("id"), a("class"), a("style"), a("title"))
}

func i18nAttrs() []AttrInfo {
	return group(a("lang"), aEnum("dir", "ltr", "rtl"))
}

func eventAttrs() []AttrInfo {
	return group(
		a("onclick"), a("ondblclick"), a("onmousedown"), a("onmouseup"),
		a("onmouseover"), a("onmousemove"), a("onmouseout"),
		a("onkeypress"), a("onkeydown"), a("onkeyup"),
	)
}

// stdAttrs is the %attrs entity: core + i18n + events.
func stdAttrs() []AttrInfo {
	out := coreattrs()
	out = append(out, i18nAttrs()...)
	out = append(out, eventAttrs()...)
	return out
}

func cellAlign() []AttrInfo {
	return group(
		aEnum("align", "left", "center", "right", "justify", "char"),
		a("char"), aLen("charoff"),
		aEnum("valign", "top", "middle", "bottom", "baseline"),
	)
}

// blockLevel is the set of block-level elements; opening any of them
// implies the end of an open P element.
var blockLevel = []string{
	"p", "h1", "h2", "h3", "h4", "h5", "h6", "ul", "ol", "dir", "menu",
	"dl", "pre", "div", "center", "noscript", "noframes", "blockquote",
	"form", "hr", "table", "address", "fieldset", "isindex",
}

// buildHTML40 constructs the HTML 4.0 transitional element tables
// (with frameset elements). Called once, via the memoized HTML40.
func buildHTML40() *Spec {
	m := map[string]*ElementInfo{}

	// ---- Document structure ----
	add(m,
		elem("html").once().structural().omit().
			attrs(i18nAttrs(), group(dep(a("version")))),
		elem("head").once().structural().omit().context("html").
			impliedEnd("body", "frameset").
			attrs(i18nAttrs(), group(aURL("profile"))),
		elem("body").once().structural().omit().context("html", "noframes").
			attrs(stdAttrs(), group(
				a("onload"), a("onunload"),
				dep(aURL("background")), dep(aColor("bgcolor")),
				dep(aColor("text")), dep(aColor("link")),
				dep(aColor("vlink")), dep(aColor("alink")),
			)),
		elem("title").once().head().attrs(i18nAttrs()),
		elem("base").empty().head().attrs(group(aURL("href"), a("target"))),
		elem("meta").empty().head().
			attrs(i18nAttrs(), group(a("http-equiv"), a("name"), req(a("content")), a("scheme"))),
		elem("link").empty().head().
			attrs(stdAttrs(), group(
				a("charset"), aURL("href"), a("hreflang"), a("type"),
				a("rel"), a("rev"), a("media"), a("target"),
			)),
		elem("style").head().
			attrs(i18nAttrs(), group(req(a("type")), a("media"), a("title"))),
		elem("script").
			attrs(group(
				a("charset"), req(a("type")), dep(a("language")),
				aURL("src"), a("defer"), a("event"), a("for"),
			)),
		elem("noscript").structural().attrs(stdAttrs()),
		elem("isindex").empty().deprecated("<FORM> with an <INPUT> field").
			attrs(coreattrs(), i18nAttrs(), group(a("prompt"))),
	)

	// ---- Frames (frameset DTD) ----
	add(m,
		elem("frameset").structural().context("html", "frameset").
			attrs(coreattrs(), group(
				aMultiLen("rows"), aMultiLen("cols"), a("onload"), a("onunload"),
			)),
		elem("frame").empty().context("frameset").
			attrs(coreattrs(), group(
				aURL("longdesc"), a("name"), aURL("src"),
				aEnum("frameborder", "1", "0"),
				aNum("marginwidth"), aNum("marginheight"),
				a("noresize"), aEnum("scrolling", "yes", "no", "auto"),
			)),
		elem("noframes").structural().attrs(stdAttrs()),
		elem("iframe").inline().emptyOK().
			attrs(coreattrs(), group(
				aURL("longdesc"), a("name"), aURL("src"),
				aEnum("frameborder", "1", "0"),
				aNum("marginwidth"), aNum("marginheight"),
				aEnum("scrolling", "yes", "no", "auto"),
				dep(aEnum("align", "top", "middle", "bottom", "left", "right")),
				aLen("height"), aLen("width"),
			)),
	)

	// ---- Headings and block text ----
	headingAttrs := group(dep(aEnum("align", "left", "center", "right", "justify")))
	add(m,
		elem("h1").structural().attrs(stdAttrs(), headingAttrs),
		elem("h2").structural().attrs(stdAttrs(), headingAttrs),
		elem("h3").structural().attrs(stdAttrs(), headingAttrs),
		elem("h4").structural().attrs(stdAttrs(), headingAttrs),
		elem("h5").structural().attrs(stdAttrs(), headingAttrs),
		elem("h6").structural().attrs(stdAttrs(), headingAttrs),
		elem("p").omit().impliedEnd(blockLevel...).
			attrs(stdAttrs(), headingAttrs),
		elem("div").structural().attrs(stdAttrs(), headingAttrs),
		elem("span").inline().attrs(stdAttrs()),
		elem("address").structural().attrs(stdAttrs()),
		elem("blockquote").structural().attrs(stdAttrs(), group(aURL("cite"))),
		elem("q").inline().attrs(stdAttrs(), group(aURL("cite"))),
		elem("pre").structural().attrs(stdAttrs(), group(dep(aNum("width")))),
		elem("center").structural().deprecated("<DIV ALIGN=\"center\">").attrs(stdAttrs()),
		elem("hr").empty().
			attrs(stdAttrs(), group(
				dep(aEnum("align", "left", "center", "right")),
				dep(a("noshade")), dep(aNum("size")), dep(aLen("width")),
			)),
		elem("br").empty().
			attrs(coreattrs(), group(dep(aEnum("clear", "left", "all", "right", "none")))),
		elem("ins").attrs(stdAttrs(), group(aURL("cite"), a("datetime"))),
		elem("del").attrs(stdAttrs(), group(aURL("cite"), a("datetime"))),
		elem("bdo").inline().attrs(coreattrs(), group(a("lang"), req(aEnum("dir", "ltr", "rtl")))),
	)

	// ---- Lists ----
	add(m,
		elem("ul").structural().
			attrs(stdAttrs(), group(
				dep(aEnum("type", "disc", "square", "circle")), dep(a("compact")),
			)),
		elem("ol").structural().
			attrs(stdAttrs(), group(dep(a("type")), dep(a("compact")), dep(aNum("start")))),
		elem("li").omit().context("ul", "ol", "dir", "menu").impliedEnd("li").
			attrs(stdAttrs(), group(dep(a("type")), dep(aNum("value")))),
		elem("dl").structural().attrs(stdAttrs(), group(dep(a("compact")))),
		elem("dt").omit().context("dl").impliedEnd("dt", "dd").attrs(stdAttrs()),
		elem("dd").omit().context("dl").impliedEnd("dt", "dd").attrs(stdAttrs()),
		elem("dir").structural().deprecated("<UL>").attrs(stdAttrs(), group(dep(a("compact")))),
		elem("menu").structural().deprecated("<UL>").attrs(stdAttrs(), group(dep(a("compact")))),
	)

	// ---- Phrase and font markup ----
	add(m,
		elem("em").inline().attrs(stdAttrs()),
		elem("strong").inline().attrs(stdAttrs()),
		elem("dfn").inline().attrs(stdAttrs()),
		elem("code").inline().attrs(stdAttrs()),
		elem("samp").inline().attrs(stdAttrs()),
		elem("kbd").inline().attrs(stdAttrs()),
		elem("var").inline().attrs(stdAttrs()),
		elem("cite").inline().attrs(stdAttrs()),
		elem("abbr").inline().attrs(stdAttrs()),
		elem("acronym").inline().attrs(stdAttrs()),
		elem("tt").inline().attrs(stdAttrs()),
		elem("i").inline().attrs(stdAttrs()),
		elem("b").inline().attrs(stdAttrs()),
		elem("big").inline().attrs(stdAttrs()),
		elem("small").inline().attrs(stdAttrs()),
		elem("u").inline().deprecated("style sheets").attrs(stdAttrs()),
		elem("s").inline().deprecated("<DEL> or style sheets").attrs(stdAttrs()),
		elem("strike").inline().deprecated("<DEL> or style sheets").attrs(stdAttrs()),
		elem("sub").inline().attrs(stdAttrs()),
		elem("sup").inline().attrs(stdAttrs()),
		elem("font").inline().deprecated("style sheets").
			attrs(coreattrs(), i18nAttrs(), group(a("size"), aColor("color"), a("face"))),
		elem("basefont").empty().deprecated("style sheets").
			attrs(group(aNameTok("id"), req(a("size")), aColor("color"), a("face"))),
		elem("xmp").obsolete("<PRE>"),
		elem("listing").obsolete("<PRE>"),
		elem("plaintext").obsolete("<PRE>"),
	)

	// ---- Links, images, objects ----
	add(m,
		elem("a").inline().noSelfNest().
			attrs(stdAttrs(), group(
				a("charset"), a("type"), a("name"), aURL("href"), a("hreflang"),
				a("rel"), a("rev"), a("accesskey"),
				aEnum("shape", "rect", "circle", "poly", "default"),
				a("coords"), aNum("tabindex"), a("onfocus"), a("onblur"), a("target"),
			)),
		elem("img").empty().
			attrs(stdAttrs(), group(
				req(aURL("src")), a("alt"), aURL("longdesc"),
				aLen("height"), aLen("width"), aURL("usemap"), a("ismap"),
				a("name"),
				dep(aEnum("align", "top", "middle", "bottom", "left", "right")),
				dep(aLen("border")), dep(aNum("hspace")), dep(aNum("vspace")),
			)),
		elem("map").noSelfNest().attrs(coreattrs(), group(req(a("name")))),
		elem("area").empty().context("map").
			attrs(stdAttrs(), group(
				aEnum("shape", "rect", "circle", "poly", "default"),
				a("coords"), aURL("href"), a("nohref"), req(a("alt")),
				aNum("tabindex"), a("accesskey"), a("onfocus"), a("onblur"), a("target"),
			)),
		elem("object").
			attrs(stdAttrs(), group(
				a("declare"), aURL("classid"), aURL("codebase"), aURL("data"),
				a("type"), a("codetype"), aURL("archive"), a("standby"),
				aLen("height"), aLen("width"), aURL("usemap"), a("name"), aNum("tabindex"),
				dep(aEnum("align", "top", "middle", "bottom", "left", "right")),
				dep(aLen("border")), dep(aNum("hspace")), dep(aNum("vspace")),
			)),
		elem("param").empty().context("applet", "object").
			attrs(group(
				aNameTok("id"), req(a("name")), a("value"),
				aEnum("valuetype", "data", "ref", "object"), a("type"),
			)),
		elem("applet").deprecated("<OBJECT>").
			attrs(coreattrs(), group(
				aURL("codebase"), aURL("archive"), a("code"), a("object"),
				a("alt"), a("name"), req(aLen("width")), req(aLen("height")),
				dep(aEnum("align", "top", "middle", "bottom", "left", "right")),
				dep(aNum("hspace")), dep(aNum("vspace")),
			)),
	)

	// ---- Tables ----
	add(m,
		elem("table").structural().
			attrs(stdAttrs(), group(
				a("summary"), aLen("width"), aNum("border"),
				aEnum("frame", "void", "above", "below", "hsides", "lhs", "rhs", "vsides", "box", "border"),
				aEnum("rules", "none", "groups", "rows", "cols", "all"),
				aLen("cellspacing"), aLen("cellpadding"),
				dep(aEnum("align", "left", "center", "right")),
				dep(aColor("bgcolor")),
			)),
		elem("caption").context("table").
			attrs(stdAttrs(), group(dep(aEnum("align", "top", "bottom", "left", "right")))),
		elem("thead").omit().structural().context("table").
			impliedEnd("tbody", "tfoot").attrs(stdAttrs(), cellAlign()),
		elem("tfoot").omit().structural().context("table").
			impliedEnd("tbody").attrs(stdAttrs(), cellAlign()),
		elem("tbody").omit().structural().context("table").
			impliedEnd("tbody", "tfoot").attrs(stdAttrs(), cellAlign()),
		elem("colgroup").omit().context("table").
			impliedEnd("thead", "tbody", "tfoot", "tr", "colgroup").emptyOK().
			attrs(stdAttrs(), cellAlign(), group(aNum("span"), aLen("width"))),
		elem("col").empty().context("table", "colgroup").
			attrs(stdAttrs(), cellAlign(), group(aNum("span"), aLen("width"))),
		elem("tr").omit().structural().context("table", "thead", "tbody", "tfoot").
			impliedEnd("tr", "thead", "tbody", "tfoot").
			attrs(stdAttrs(), cellAlign(), group(dep(aColor("bgcolor")))),
		elem("td").omit().emptyOK().context("tr").
			impliedEnd("td", "th", "tr", "thead", "tbody", "tfoot").
			attrs(stdAttrs(), cellAlign(), group(
				a("abbr"), a("axis"), a("headers"),
				aEnum("scope", "row", "col", "rowgroup", "colgroup"),
				aNum("rowspan"), aNum("colspan"),
				dep(a("nowrap")), dep(aColor("bgcolor")),
				dep(aLen("width")), dep(aLen("height")),
			)),
		elem("th").omit().emptyOK().context("tr").
			impliedEnd("td", "th", "tr", "thead", "tbody", "tfoot").
			attrs(stdAttrs(), cellAlign(), group(
				a("abbr"), a("axis"), a("headers"),
				aEnum("scope", "row", "col", "rowgroup", "colgroup"),
				aNum("rowspan"), aNum("colspan"),
				dep(a("nowrap")), dep(aColor("bgcolor")),
				dep(aLen("width")), dep(aLen("height")),
			)),
	)

	// ---- Forms ----
	add(m,
		elem("form").structural().noSelfNest().
			attrs(stdAttrs(), group(
				req(aURL("action")), aEnum("method", "get", "post"),
				a("enctype"), a("accept"), a("accept-charset"),
				a("name"), a("target"), a("onsubmit"), a("onreset"),
			)),
		elem("input").empty().formField().
			attrs(stdAttrs(), group(
				aEnum("type", "text", "password", "checkbox", "radio",
					"submit", "reset", "file", "hidden", "image", "button"),
				a("name"), a("value"), a("checked"), a("disabled"),
				a("readonly"), a("size"), aNum("maxlength"), aURL("src"),
				a("alt"), aURL("usemap"), aNum("tabindex"), a("accesskey"),
				a("onfocus"), a("onblur"), a("onselect"), a("onchange"), a("accept"),
				dep(aEnum("align", "top", "middle", "bottom", "left", "right")),
			)),
		elem("select").formField().
			attrs(stdAttrs(), group(
				a("name"), aNum("size"), a("multiple"), a("disabled"),
				aNum("tabindex"), a("onfocus"), a("onblur"), a("onchange"),
			)),
		elem("optgroup").context("select").
			attrs(stdAttrs(), group(a("disabled"), req(a("label")))),
		elem("option").omit().emptyOK().context("select", "optgroup").
			impliedEnd("option", "optgroup").
			attrs(stdAttrs(), group(a("selected"), a("disabled"), a("label"), a("value"))),
		elem("textarea").formField().emptyOK().
			attrs(stdAttrs(), group(
				a("name"), req(aNum("rows")), req(aNum("cols")),
				a("disabled"), a("readonly"), aNum("tabindex"), a("accesskey"),
				a("onfocus"), a("onblur"), a("onselect"), a("onchange"),
			)),
		elem("fieldset").structural().attrs(stdAttrs()),
		elem("legend").context("fieldset").
			attrs(stdAttrs(), group(
				a("accesskey"),
				dep(aEnum("align", "top", "bottom", "left", "right")),
			)),
		elem("label").inline().noSelfNest().formField().
			attrs(stdAttrs(), group(a("for"), a("accesskey"), a("onfocus"), a("onblur"))),
		elem("button").inline().formField().
			attrs(stdAttrs(), group(
				a("name"), a("value"), aEnum("type", "button", "submit", "reset"),
				a("disabled"), aNum("tabindex"), a("accesskey"), a("onfocus"), a("onblur"),
			)),
	)

	spec := &Spec{
		Version:           "HTML 4.0",
		HTML40:            true,
		Elements:          m,
		EnabledExtensions: map[string]bool{},
	}
	pruneImpliedEnds(m)
	addVendorExtensions(spec)
	return spec
}
