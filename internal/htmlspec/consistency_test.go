package htmlspec

import "testing"

// Cross-version consistency invariants over the hand-written tables.
// These guard against table typos: every name a table references must
// resolve, and flag combinations must be coherent.

func allSpecs() map[string]*Spec {
	return map[string]*Spec{
		"2.0": HTML20(),
		"3.2": HTML32(),
		"4.0": HTML40(),
	}
}

func TestContextTargetsExist(t *testing.T) {
	for ver, s := range allSpecs() {
		for _, e := range s.Elements {
			for _, parent := range e.Context {
				if s.Element(parent) == nil {
					t.Errorf("%s: %s lists unknown context parent %q", ver, e.Name, parent)
				}
			}
		}
	}
}

func TestImpliedEndTargetsExist(t *testing.T) {
	for ver, s := range allSpecs() {
		for _, e := range s.Elements {
			for _, sib := range e.ImpliedEndBy {
				if s.Element(sib) == nil {
					t.Errorf("%s: %s lists unknown implied-end trigger %q", ver, e.Name, sib)
				}
			}
		}
	}
}

func TestFlagCoherence(t *testing.T) {
	for ver, s := range allSpecs() {
		for _, e := range s.Elements {
			if e.Empty && e.OmitClose {
				t.Errorf("%s: %s is both Empty and OmitClose", ver, e.Name)
			}
			if e.Empty && e.EmptyOK {
				t.Errorf("%s: %s is Empty yet EmptyOK", ver, e.Name)
			}
			if e.Inline && e.Structural {
				t.Errorf("%s: %s is both Inline and Structural", ver, e.Name)
			}
			if (e.Deprecated || e.Obsolete) && e.Replacement == "" {
				t.Errorf("%s: %s deprecated/obsolete without replacement", ver, e.Name)
			}
			if e.Deprecated && e.Obsolete {
				t.Errorf("%s: %s both deprecated and obsolete", ver, e.Name)
			}
		}
	}
}

func TestAttrTableCoherence(t *testing.T) {
	for ver, s := range allSpecs() {
		for _, e := range s.Elements {
			for name, a := range e.Attrs {
				if name != a.Name {
					t.Errorf("%s: %s attr keyed %q but named %q", ver, e.Name, name, a.Name)
				}
				if a.Type == Enum && len(a.Values) == 0 {
					t.Errorf("%s: %s/%s is Enum with no values", ver, e.Name, name)
				}
				if a.Type != Enum && len(a.Values) > 0 {
					t.Errorf("%s: %s/%s has values but is not Enum", ver, e.Name, name)
				}
				if a.Extension != "" && a.Extension != VendorNetscape && a.Extension != VendorMicrosoft {
					t.Errorf("%s: %s/%s has unknown vendor %q", ver, e.Name, name, a.Extension)
				}
				if a.Required && a.Extension != "" {
					t.Errorf("%s: %s/%s is a required vendor extension", ver, e.Name, name)
				}
			}
			// Empty elements cannot meaningfully require a close or
			// carry implied ends.
			if e.Empty && len(e.ImpliedEndBy) > 0 {
				t.Errorf("%s: empty element %s has ImpliedEndBy", ver, e.Name)
			}
		}
	}
}

func TestElementNameKeysMatch(t *testing.T) {
	for ver, s := range allSpecs() {
		for key, e := range s.Elements {
			if key != e.Name {
				t.Errorf("%s: element keyed %q but named %q", ver, key, e.Name)
			}
		}
	}
}

// TestVersionMonotonicity: every HTML 2.0 element exists in 3.2, and
// every 3.2 element exists in 4.0 (HTML grew monotonically through
// these versions; only vendor tags float free).
func TestVersionMonotonicity(t *testing.T) {
	s20, s32, s40 := HTML20(), HTML32(), HTML40()
	for name, e := range s20.Elements {
		if e.Extension != "" {
			continue
		}
		if name == "nextid" {
			continue // dropped after 2.0
		}
		if s32.Element(name) == nil {
			t.Errorf("2.0 element %s missing from 3.2", name)
		}
	}
	for name, e := range s32.Elements {
		if e.Extension != "" {
			continue
		}
		if s40.Element(name) == nil {
			t.Errorf("3.2 element %s missing from 4.0", name)
		}
	}
}

// TestOnceOnlyStructure: the once-only set is exactly the document
// skeleton in every version.
func TestOnceOnlyStructure(t *testing.T) {
	for ver, s := range allSpecs() {
		for _, name := range []string{"html", "head", "body", "title"} {
			if e := s.Element(name); e == nil || !e.OnceOnly {
				t.Errorf("%s: %s should be once-only", ver, name)
			}
		}
	}
}
