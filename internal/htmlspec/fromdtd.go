package htmlspec

import (
	"strings"

	"weblint/internal/dtd"
)

// FromDTD generates a Spec from a parsed DTD, implementing the paper's
// Section 6.1 future-work item: "driving weblint with a DTD:
// generating the HTML modules used by weblint".
//
// As the paper notes, "some of the information in the HTML modules
// cannot be automatically inferred from DTDs, given the sorts of
// checks which weblint performs" — the DTD carries element existence,
// tag omission, content models and attribute types, but not weblint's
// behavioural classifications (inline vs structural, once-only,
// head-only, deprecation). FromDTD therefore derives what it can from
// the DTD and fills the behavioural flags from a small built-in
// knowledge table, exactly the split the paper describes.
func FromDTD(d *dtd.DTD, version string) *Spec {
	m := map[string]*ElementInfo{}
	for _, name := range d.ElementNames() {
		decl := d.Element(name)
		e := &ElementInfo{
			Name:      name,
			Empty:     decl.Content == dtd.ContentEmpty,
			OmitClose: decl.OmitEnd && decl.Content != dtd.ContentEmpty,
			Attrs:     map[string]*AttrInfo{},
		}
		// Self-nesting exclusions (-(A) on A) become NoSelfNest.
		for _, x := range decl.Exclusions {
			if x == name {
				e.NoSelfNest = true
			}
		}
		for attrName, ad := range decl.Attrs {
			e.Attrs[attrName] = attrFromDecl(attrName, ad)
		}
		applyBehaviour(e)
		m[name] = e
	}

	// Derive required-context from content models: if an element
	// appears in the content model of only a small set of parents,
	// and in no "flow" contexts, those parents are its context.
	deriveContexts(d, m)

	spec := &Spec{
		Version:           version,
		HTML40:            strings.Contains(version, "4"),
		Elements:          m,
		EnabledExtensions: map[string]bool{},
	}
	return spec.finalize()
}

// attrFromDecl converts a DTD attribute declaration to an AttrInfo.
func attrFromDecl(name string, ad *dtd.AttrDecl) *AttrInfo {
	out := &AttrInfo{Name: name, Required: ad.Default == dtd.DefRequired}
	switch {
	case ad.Type == "enum":
		// Single-value enumerations ((ismap), (checked)) are SGML
		// minimized boolean attributes; treat as CDATA flags.
		if len(ad.Enum) <= 1 {
			out.Type = CDATA
		} else {
			out.Type = Enum
			out.Values = ad.Enum
		}
	case ad.Type == "NUMBER":
		out.Type = Number
	case ad.Type == "ID", ad.Type == "NAME", ad.Type == "NMTOKEN", ad.Type == "IDREF":
		out.Type = NameToken
	default:
		out.Type = CDATA
	}
	// Color-typed attributes are a weblint refinement the DTD calls
	// CDATA; recover them by name.
	switch name {
	case "bgcolor", "text", "link", "vlink", "alink", "color",
		"bordercolor", "bordercolorlight", "bordercolordark":
		out.Type = Color
	}
	return out
}

// behaviourTable carries the classifications a DTD cannot express.
var behaviourTable = map[string]struct {
	inline, structural, once, head, formField, emptyOK bool
}{
	"html":  {structural: true, once: true},
	"head":  {structural: true, once: true},
	"body":  {structural: true, once: true},
	"title": {once: true, head: true},
	"base":  {head: true},
	"meta":  {head: true},
	"link":  {head: true},
	"style": {head: true},

	"table": {structural: true}, "tr": {structural: true},
	"thead": {structural: true}, "tbody": {structural: true}, "tfoot": {structural: true},
	"ul": {structural: true}, "ol": {structural: true}, "dl": {structural: true},
	"dir": {structural: true}, "menu": {structural: true},
	"div": {structural: true}, "form": {structural: true},
	"blockquote": {structural: true}, "address": {structural: true},
	"fieldset": {structural: true}, "center": {structural: true},
	"pre": {structural: true}, "noscript": {structural: true}, "noframes": {structural: true},
	"h1": {structural: true}, "h2": {structural: true}, "h3": {structural: true},
	"h4": {structural: true}, "h5": {structural: true}, "h6": {structural: true},

	"a": {inline: true}, "b": {inline: true}, "i": {inline: true},
	"u": {inline: true}, "s": {inline: true}, "strike": {inline: true},
	"tt": {inline: true}, "big": {inline: true}, "small": {inline: true},
	"em": {inline: true}, "strong": {inline: true}, "dfn": {inline: true},
	"code": {inline: true}, "samp": {inline: true}, "kbd": {inline: true},
	"var": {inline: true}, "cite": {inline: true}, "abbr": {inline: true},
	"acronym": {inline: true}, "font": {inline: true}, "span": {inline: true},
	"q": {inline: true}, "sub": {inline: true}, "sup": {inline: true},
	"bdo": {inline: true}, "nobr": {inline: true},
	"label": {inline: true, formField: true}, "button": {inline: true, formField: true},

	"input": {formField: true}, "select": {formField: true}, "textarea": {formField: true, emptyOK: true},
	"td": {emptyOK: true}, "th": {emptyOK: true}, "option": {emptyOK: true},
	"iframe": {inline: true, emptyOK: true},
}

// applyBehaviour fills the classifications the DTD cannot express.
func applyBehaviour(e *ElementInfo) {
	b, ok := behaviourTable[e.Name]
	if !ok {
		return
	}
	e.Inline = b.inline
	e.Structural = b.structural
	e.OnceOnly = b.once
	e.HeadOnly = b.head
	e.FormField = b.formField
	e.EmptyOK = b.emptyOK
}

// flowParents are elements whose content models include general flow;
// appearing there does not constrain an element's context.
func deriveContexts(d *dtd.DTD, m map[string]*ElementInfo) {
	// Build parent sets from content models.
	parents := map[string][]string{}
	for _, pname := range d.ElementNames() {
		decl := d.Element(pname)
		if decl.Content != dtd.ContentModel || decl.Model == nil {
			continue
		}
		for child := range decl.Model.Names() {
			parents[child] = append(parents[child], pname)
		}
	}
	for child, ps := range parents {
		e, ok := m[child]
		if !ok {
			continue
		}
		// Only constrain elements with few parents, none of which
		// hold general flow content (TD, LI, DIV would admit
		// everything).
		if len(ps) > 4 {
			continue
		}
		constrained := true
		for _, p := range ps {
			decl := d.Element(p)
			if decl.Model != nil && len(decl.Model.Names()) > 12 {
				constrained = false
				break
			}
		}
		if constrained {
			sortStrings(ps)
			e.Context = ps
		}
	}
}
