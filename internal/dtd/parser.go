package dtd

import (
	"strings"
)

// Parse parses DTD source text.
//
// Parameter entity handling follows SGML practice: entity texts are
// expanded at definition time (so entities may reference earlier
// entities), and ELEMENT/ATTLIST declaration bodies are lexically
// expanded before parsing, which allows entities to stand for whole
// attribute-definition lists as the W3C HTML DTDs do.
func Parse(src string) (*DTD, error) {
	p := &parser{
		src: src,
		dtd: &DTD{
			Elements: map[string]*ElementDecl{},
			Entities: map[string]string{},
		},
	}
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.dtd, nil
}

// MustParse is Parse for embedded, known-good DTD text; it panics on
// error.
func MustParse(src string) *DTD {
	d, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return d
}

type parser struct {
	src string
	pos int
	dtd *DTD
}

func (p *parser) fail(msg string) error {
	return &ParseError{Offset: p.pos, Msg: msg}
}

// run processes declarations until end of input.
func (p *parser) run() error {
	for {
		p.skipSpaceAndComments()
		if p.pos >= len(p.src) {
			return nil
		}
		if !strings.HasPrefix(p.src[p.pos:], "<!") {
			return p.fail("expected '<!' declaration")
		}
		if err := p.declaration(); err != nil {
			return err
		}
	}
}

// skipSpaceAndComments consumes whitespace and <!-- --> comments
// between declarations.
func (p *parser) skipSpaceAndComments() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		if strings.HasPrefix(p.src[p.pos:], "<!--") {
			end := strings.Index(p.src[p.pos+4:], "-->")
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			p.pos += 4 + end + 3
			continue
		}
		return
	}
}

// declaration parses one <!KEYWORD ...> declaration.
func (p *parser) declaration() error {
	p.pos += 2 // past "<!"
	keyword := strings.ToUpper(p.name())
	switch keyword {
	case "ENTITY":
		return p.entityDecl()
	case "ELEMENT", "ATTLIST":
		body, err := p.captureToGT()
		if err != nil {
			return err
		}
		sub := &parser{src: p.expandRefs(body), dtd: p.dtd}
		if keyword == "ELEMENT" {
			return sub.elementDeclBody()
		}
		return sub.attlistDeclBody()
	default:
		// Unknown declarations (NOTATION, ...) are skipped.
		_, err := p.captureToGT()
		return err
	}
}

// captureToGT consumes up to the declaration's closing '>' (which may
// not appear inside quoted literals) and returns the body text.
func (p *parser) captureToGT() (string, error) {
	start := p.pos
	var quote byte
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case quote != 0:
			if c == quote {
				quote = 0
			}
		case c == '"' || c == '\'':
			quote = c
		case c == '>':
			body := p.src[start:p.pos]
			p.pos++
			return body, nil
		}
		p.pos++
	}
	return "", p.fail("unterminated declaration")
}

// expandRefs lexically expands %name; parameter entity references,
// repeatedly, so entities may reference other entities.
func (p *parser) expandRefs(s string) string {
	for depth := 0; depth < 16 && strings.ContainsRune(s, '%'); depth++ {
		var b strings.Builder
		changed := false
		i := 0
		for i < len(s) {
			if s[i] != '%' {
				b.WriteByte(s[i])
				i++
				continue
			}
			j := i + 1
			for j < len(s) && isNameByte(s[j]) {
				j++
			}
			name := s[i+1 : j]
			text, ok := p.dtd.Entities[name]
			if !ok || name == "" {
				b.WriteByte(s[i])
				i++
				continue
			}
			b.WriteByte(' ')
			b.WriteString(text)
			b.WriteByte(' ')
			if j < len(s) && s[j] == ';' {
				j++
			}
			i = j
			changed = true
		}
		s = b.String()
		if !changed {
			break
		}
	}
	return s
}

// entityDecl parses <!ENTITY % name "text">, with the literal expanded
// at definition time.
func (p *parser) entityDecl() error {
	p.skipWS()
	if !p.eat('%') {
		// General entities are not needed; skip the declaration.
		_, err := p.captureToGT()
		return err
	}
	p.skipWS()
	name := p.name()
	if name == "" {
		return p.fail("entity name expected")
	}
	p.skipWS()
	text, ok := p.literal()
	if !ok {
		return p.fail("entity literal expected")
	}
	if _, dup := p.dtd.Entities[name]; !dup {
		// First declaration wins, per SGML.
		p.dtd.Entities[name] = text
	}
	_, err := p.captureToGT()
	return err
}

// elementDeclBody parses the expanded body of an ELEMENT declaration:
//
//	name-or-group omitstart omitend content [exceptions]
func (p *parser) elementDeclBody() error {
	p.skipWS()
	names, err := p.nameGroup()
	if err != nil {
		return err
	}
	p.skipWS()
	omitStart, err := p.omitFlag()
	if err != nil {
		return err
	}
	p.skipWS()
	omitEnd, err := p.omitFlag()
	if err != nil {
		return err
	}
	p.skipWS()

	decl := ElementDecl{OmitStart: omitStart, OmitEnd: omitEnd}

	switch {
	case p.eatKeyword("EMPTY"):
		decl.Content = ContentEmpty
	case p.eatKeyword("CDATA"):
		decl.Content = ContentCDATA
	case p.eatKeyword("ANY"):
		decl.Content = ContentAny
	default:
		model, err := p.contentModel()
		if err != nil {
			return err
		}
		decl.Content = ContentModel
		decl.Model = model
	}

	// Inclusion/exclusion exceptions: -(A|B) +(C).
	for {
		p.skipWS()
		switch {
		case p.peek() == '-' && p.peekAt(1) == '(':
			p.pos++
			g, err := p.nameGroup()
			if err != nil {
				return err
			}
			decl.Exclusions = append(decl.Exclusions, g...)
		case p.peek() == '+' && p.peekAt(1) == '(':
			p.pos++
			g, err := p.nameGroup()
			if err != nil {
				return err
			}
			decl.Inclusions = append(decl.Inclusions, g...)
		default:
			if p.pos < len(p.src) && strings.TrimSpace(p.src[p.pos:]) != "" {
				return p.fail("unexpected text after element declaration")
			}
			for _, n := range names {
				d := decl
				d.Name = n
				d.Attrs = map[string]*AttrDecl{}
				if prev, ok := p.dtd.Elements[n]; ok {
					// Keep attributes from an ATTLIST that
					// preceded the ELEMENT declaration.
					d.Attrs = prev.Attrs
				}
				p.dtd.Elements[n] = &d
			}
			return nil
		}
	}
}

// omitFlag parses an SGML tag-omission flag: '-' (required) or 'O'
// (omissible).
func (p *parser) omitFlag() (bool, error) {
	switch p.peek() {
	case '-':
		p.pos++
		return false, nil
	case 'O', 'o':
		p.pos++
		return true, nil
	}
	return false, p.fail("tag omission flag ('-' or 'O') expected")
}

// attlistDeclBody parses the expanded body of an ATTLIST declaration.
func (p *parser) attlistDeclBody() error {
	p.skipWS()
	names, err := p.nameGroup()
	if err != nil {
		return err
	}
	var attrs []*AttrDecl
	for {
		p.skipWS()
		if p.pos >= len(p.src) {
			break
		}
		ad, err := p.attrDef()
		if err != nil {
			return err
		}
		attrs = append(attrs, ad)
	}
	for _, n := range names {
		e, ok := p.dtd.Elements[n]
		if !ok {
			// ATTLIST before ELEMENT: create a placeholder which
			// the ELEMENT declaration will adopt.
			e = &ElementDecl{Name: n, Attrs: map[string]*AttrDecl{}}
			p.dtd.Elements[n] = e
		}
		for _, ad := range attrs {
			if _, dup := e.Attrs[ad.Name]; !dup {
				e.Attrs[ad.Name] = ad
			}
		}
	}
	return nil
}

// attrDef parses one attribute definition within an ATTLIST.
func (p *parser) attrDef() (*AttrDecl, error) {
	name := p.name()
	if name == "" {
		return nil, p.fail("attribute name expected")
	}
	p.skipWS()

	ad := &AttrDecl{Name: strings.ToLower(name)}

	// Type: keyword or enumerated value group.
	if p.peek() == '(' {
		vals, err := p.nameGroup()
		if err != nil {
			return nil, err
		}
		ad.Type = "enum"
		ad.Enum = vals
	} else {
		t := p.name()
		if t == "" {
			return nil, p.fail("attribute type expected")
		}
		ad.Type = strings.ToUpper(t)
	}
	p.skipWS()

	// Default declaration.
	switch {
	case p.eatKeyword("#REQUIRED"):
		ad.Default = DefRequired
	case p.eatKeyword("#IMPLIED"):
		ad.Default = DefImplied
	case p.eatKeyword("#FIXED"):
		ad.Default = DefFixed
		p.skipWS()
		v, ok := p.literal()
		if !ok {
			return nil, p.fail("#FIXED literal expected")
		}
		ad.Value = v
	default:
		if v, ok := p.literal(); ok {
			ad.Default = DefValue
			ad.Value = v
		} else {
			v := p.name()
			if v == "" {
				return nil, p.fail("attribute default expected")
			}
			ad.Default = DefValue
			ad.Value = v
		}
	}
	return ad, nil
}

// contentModel parses a content model with occurrence indicator.
func (p *parser) contentModel() (*Model, error) {
	p.skipWS()
	if p.peek() != '(' {
		n := p.name()
		if n == "" {
			return nil, p.fail("content model expected")
		}
		m := &Model{Kind: MName, Name: strings.ToLower(n)}
		m.Occur = p.occurrence()
		return m, nil
	}
	return p.modelGroup()
}

// modelGroup parses '(' expr ')' occurrence.
func (p *parser) modelGroup() (*Model, error) {
	if !p.eat('(') {
		return nil, p.fail("'(' expected")
	}
	var terms []*Model
	connector := byte(0)
	for {
		p.skipWS()
		term, err := p.modelTerm()
		if err != nil {
			return nil, err
		}
		terms = append(terms, term)
		p.skipWS()
		c := p.peek()
		switch c {
		case ',', '|', '&':
			if connector == 0 {
				connector = c
			} else if connector != c {
				return nil, p.fail("mixed connectors in model group")
			}
			p.pos++
		case ')':
			p.pos++
			occ := p.occurrence()
			if len(terms) == 1 && connector == 0 {
				t := terms[0]
				if t.Occur == One {
					t.Occur = occ
					return t, nil
				}
				return &Model{Kind: MSeq, Children: terms, Occur: occ}, nil
			}
			m := &Model{Children: terms, Occur: occ}
			switch connector {
			case '|':
				m.Kind = MChoice
			case '&':
				m.Kind = MAll
			default:
				m.Kind = MSeq
			}
			return m, nil
		default:
			return nil, p.fail("',', '|', '&' or ')' expected in model group")
		}
	}
}

// modelTerm parses one term of a model group.
func (p *parser) modelTerm() (*Model, error) {
	p.skipWS()
	if p.peek() == '(' {
		return p.modelGroup()
	}
	if p.eatKeyword("#PCDATA") {
		return &Model{Kind: MPCData}, nil
	}
	n := p.name()
	if n == "" {
		return nil, p.fail("name expected in content model")
	}
	m := &Model{Kind: MName, Name: strings.ToLower(n)}
	m.Occur = p.occurrence()
	return m, nil
}

// occurrence parses an optional occurrence indicator.
func (p *parser) occurrence() Occurrence {
	switch p.peek() {
	case '?':
		p.pos++
		return Opt
	case '*':
		p.pos++
		return Star
	case '+':
		p.pos++
		return Plus
	}
	return One
}

// nameGroup parses NAME or (A|B|C), returning lower-case names.
func (p *parser) nameGroup() ([]string, error) {
	p.skipWS()
	if p.peek() != '(' {
		n := p.name()
		if n == "" {
			return nil, p.fail("name expected")
		}
		return []string{strings.ToLower(n)}, nil
	}
	p.pos++
	var out []string
	for {
		p.skipWS()
		n := p.name()
		if n == "" {
			return nil, p.fail("name expected in group")
		}
		out = append(out, strings.ToLower(n))
		p.skipWS()
		c := p.peek()
		if c == '|' || c == ',' || c == '&' {
			p.pos++
			continue
		}
		if c == ')' {
			p.pos++
			return out, nil
		}
		return nil, p.fail("'|' or ')' expected in name group")
	}
}

// name reads a raw name token.
func (p *parser) name() string {
	start := p.pos
	for p.pos < len(p.src) && isNameByte(p.src[p.pos]) {
		p.pos++
	}
	return p.src[start:p.pos]
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '-' || c == '.' || c == '_'
}

// literal reads a quoted string, expanding parameter entity references
// inside it (definition-time expansion).
func (p *parser) literal() (string, bool) {
	q := p.peek()
	if q != '"' && q != '\'' {
		return "", false
	}
	p.pos++
	var b strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == q {
			p.pos++
			return b.String(), true
		}
		if c == '%' {
			p.pos++
			n := p.name()
			p.eat(';')
			b.WriteString(p.dtd.Entities[n])
			continue
		}
		b.WriteByte(c)
		p.pos++
	}
	return b.String(), true // unterminated at EOF; tolerate
}

// skipWS consumes whitespace and inline -- comment -- pairs.
func (p *parser) skipWS() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		if strings.HasPrefix(p.src[p.pos:], "--") {
			end := strings.Index(p.src[p.pos+2:], "--")
			if end < 0 {
				p.pos = len(p.src)
				return
			}
			p.pos += 2 + end + 2
			continue
		}
		return
	}
}

func (p *parser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *parser) peekAt(off int) byte {
	if p.pos+off < len(p.src) {
		return p.src[p.pos+off]
	}
	return 0
}

func (p *parser) eat(c byte) bool {
	if p.peek() == c {
		p.pos++
		return true
	}
	return false
}

func (p *parser) eatKeyword(kw string) bool {
	if len(p.src)-p.pos < len(kw) {
		return false
	}
	if !strings.EqualFold(p.src[p.pos:p.pos+len(kw)], kw) {
		return false
	}
	end := p.pos + len(kw)
	if end < len(p.src) && isNameByte(p.src[end]) {
		return false
	}
	p.pos = end
	return true
}
