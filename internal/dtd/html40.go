package dtd

// HTML40Transitional is an embedded subset of the HTML 4.0
// transitional DTD, large enough to drive the strict validator over
// realistic documents and to generate weblint spec tables from (the
// paper's "driving weblint with a DTD" future-work item). It follows
// the structure and entity names of the W3C DTD.
const HTML40Transitional = `
<!-- HTML 4.0 Transitional (subset) -->

<!ENTITY % fontstyle "TT | I | B | U | S | STRIKE | BIG | SMALL">
<!ENTITY % phrase "EM | STRONG | DFN | CODE | SAMP | KBD | VAR | CITE | ABBR | ACRONYM">
<!ENTITY % special "A | IMG | APPLET | OBJECT | FONT | BASEFONT | BR | SCRIPT | MAP | Q | SUB | SUP | SPAN | BDO | IFRAME | NOBR">
<!ENTITY % formctrl "INPUT | SELECT | TEXTAREA | LABEL | BUTTON">
<!ENTITY % inline "#PCDATA | %fontstyle; | %phrase; | %special; | %formctrl;">

<!ENTITY % heading "H1|H2|H3|H4|H5|H6">
<!ENTITY % lists "UL | OL | DIR | MENU">
<!ENTITY % blocktext "PRE | HR | BLOCKQUOTE | ADDRESS | CENTER | NOFRAMES">
<!ENTITY % block
   "P | %heading; | %lists; | %blocktext; | ISINDEX | FIELDSET | TABLE | FORM | NOSCRIPT | DIV | DL">
<!ENTITY % flow "%block; | %inline;">

<!ENTITY % coreattrs
  "id    ID       #IMPLIED
   class CDATA    #IMPLIED
   style CDATA    #IMPLIED
   title CDATA    #IMPLIED">

<!ENTITY % i18n
  "lang  NAME     #IMPLIED
   dir   (ltr|rtl) #IMPLIED">

<!ENTITY % events
  "onclick     CDATA #IMPLIED
   ondblclick  CDATA #IMPLIED
   onmousedown CDATA #IMPLIED
   onmouseup   CDATA #IMPLIED
   onmouseover CDATA #IMPLIED
   onmousemove CDATA #IMPLIED
   onmouseout  CDATA #IMPLIED
   onkeypress  CDATA #IMPLIED
   onkeydown   CDATA #IMPLIED
   onkeyup     CDATA #IMPLIED">

<!ENTITY % attrs "%coreattrs; %i18n; %events;">

<!ELEMENT HTML O O (HEAD, BODY)>
<!ATTLIST HTML %i18n; version CDATA #IMPLIED>

<!ENTITY % head.misc "SCRIPT|STYLE|META|LINK|OBJECT|ISINDEX">
<!ELEMENT HEAD O O (TITLE & BASE?) +(%head.misc;)>
<!ATTLIST HEAD %i18n; profile CDATA #IMPLIED>

<!ELEMENT TITLE - - (#PCDATA) -(%head.misc;)>
<!ATTLIST TITLE %i18n;>

<!ELEMENT BASE - O EMPTY>
<!ATTLIST BASE href CDATA #IMPLIED target CDATA #IMPLIED>

<!ELEMENT META - O EMPTY>
<!ATTLIST META
  %i18n;
  http-equiv NAME  #IMPLIED
  name       NAME  #IMPLIED
  content    CDATA #REQUIRED
  scheme     CDATA #IMPLIED>

<!ELEMENT LINK - O EMPTY>
<!ATTLIST LINK
  %attrs;
  charset  CDATA #IMPLIED
  href     CDATA #IMPLIED
  hreflang NAME  #IMPLIED
  type     CDATA #IMPLIED
  rel      CDATA #IMPLIED
  rev      CDATA #IMPLIED
  media    CDATA #IMPLIED
  target   CDATA #IMPLIED>

<!ELEMENT STYLE - - CDATA>
<!ATTLIST STYLE %i18n; type CDATA #REQUIRED media CDATA #IMPLIED title CDATA #IMPLIED>

<!ELEMENT SCRIPT - - CDATA>
<!ATTLIST SCRIPT
  charset  CDATA #IMPLIED
  type     CDATA #REQUIRED
  language CDATA #IMPLIED
  src      CDATA #IMPLIED
  defer    (defer) #IMPLIED>

<!ELEMENT NOSCRIPT - - (%flow;)*>
<!ATTLIST NOSCRIPT %attrs;>

<!ELEMENT BODY O O (%flow;)*>
<!ATTLIST BODY
  %attrs;
  onload     CDATA #IMPLIED
  onunload   CDATA #IMPLIED
  background CDATA #IMPLIED
  bgcolor    CDATA #IMPLIED
  text       CDATA #IMPLIED
  link       CDATA #IMPLIED
  vlink      CDATA #IMPLIED
  alink      CDATA #IMPLIED>

<!ELEMENT (%heading;) - - (%inline;)*>
<!ATTLIST (%heading;) %attrs; align (left|center|right|justify) #IMPLIED>

<!ELEMENT P - O (%inline;)*>
<!ATTLIST P %attrs; align (left|center|right|justify) #IMPLIED>

<!ELEMENT DIV - - (%flow;)*>
<!ATTLIST DIV %attrs; align (left|center|right|justify) #IMPLIED>

<!ELEMENT SPAN - - (%inline;)*>
<!ATTLIST SPAN %attrs;>

<!ELEMENT ADDRESS - - (%inline;)*>
<!ATTLIST ADDRESS %attrs;>

<!ELEMENT CENTER - - (%flow;)*>
<!ATTLIST CENTER %attrs;>

<!ELEMENT BLOCKQUOTE - - (%flow;)*>
<!ATTLIST BLOCKQUOTE %attrs; cite CDATA #IMPLIED>

<!ELEMENT Q - - (%inline;)*>
<!ATTLIST Q %attrs; cite CDATA #IMPLIED>

<!ELEMENT PRE - - (%inline;)* -(IMG|OBJECT|APPLET|BIG|SMALL|SUB|SUP|FONT|BASEFONT)>
<!ATTLIST PRE %attrs; width NUMBER #IMPLIED>

<!ELEMENT BR - O EMPTY>
<!ATTLIST BR %coreattrs; clear (left|all|right|none) #IMPLIED>

<!ELEMENT HR - O EMPTY>
<!ATTLIST HR
  %attrs;
  align (left|center|right) #IMPLIED
  noshade (noshade) #IMPLIED
  size  CDATA #IMPLIED
  width CDATA #IMPLIED>

<!ELEMENT (%fontstyle;|%phrase;) - - (%inline;)*>
<!ATTLIST (%fontstyle;|%phrase;) %attrs;>

<!ELEMENT (SUB|SUP) - - (%inline;)*>
<!ATTLIST (SUB|SUP) %attrs;>

<!ELEMENT FONT - - (%inline;)*>
<!ATTLIST FONT %coreattrs; %i18n; size CDATA #IMPLIED color CDATA #IMPLIED face CDATA #IMPLIED>

<!ELEMENT BASEFONT - O EMPTY>
<!ATTLIST BASEFONT id ID #IMPLIED size CDATA #REQUIRED color CDATA #IMPLIED face CDATA #IMPLIED>

<!ELEMENT BDO - - (%inline;)*>
<!ATTLIST BDO %coreattrs; lang NAME #IMPLIED dir (ltr|rtl) #REQUIRED>

<!ELEMENT NOBR - - (%inline;)*>

<!ELEMENT A - - (%inline;)* -(A)>
<!ATTLIST A
  %attrs;
  charset  CDATA #IMPLIED
  type     CDATA #IMPLIED
  name     CDATA #IMPLIED
  href     CDATA #IMPLIED
  hreflang NAME  #IMPLIED
  rel      CDATA #IMPLIED
  rev      CDATA #IMPLIED
  accesskey CDATA #IMPLIED
  shape    (rect|circle|poly|default) rect
  coords   CDATA #IMPLIED
  tabindex NUMBER #IMPLIED
  onfocus  CDATA #IMPLIED
  onblur   CDATA #IMPLIED
  target   CDATA #IMPLIED>

<!ELEMENT IMG - O EMPTY>
<!ATTLIST IMG
  %attrs;
  src      CDATA #REQUIRED
  alt      CDATA #REQUIRED
  longdesc CDATA #IMPLIED
  name     CDATA #IMPLIED
  height   CDATA #IMPLIED
  width    CDATA #IMPLIED
  usemap   CDATA #IMPLIED
  ismap    (ismap) #IMPLIED
  align    (top|middle|bottom|left|right) #IMPLIED
  border   CDATA #IMPLIED
  hspace   NUMBER #IMPLIED
  vspace   NUMBER #IMPLIED>

<!ELEMENT MAP - - ((%block;) | AREA)+>
<!ATTLIST MAP %attrs; name CDATA #REQUIRED>

<!ELEMENT AREA - O EMPTY>
<!ATTLIST AREA
  %attrs;
  shape  (rect|circle|poly|default) rect
  coords CDATA #IMPLIED
  href   CDATA #IMPLIED
  nohref (nohref) #IMPLIED
  alt    CDATA #REQUIRED
  target CDATA #IMPLIED>

<!ELEMENT OBJECT - - (PARAM | %flow;)*>
<!ATTLIST OBJECT
  %attrs;
  declare  (declare) #IMPLIED
  classid  CDATA #IMPLIED
  codebase CDATA #IMPLIED
  data     CDATA #IMPLIED
  type     CDATA #IMPLIED
  codetype CDATA #IMPLIED
  archive  CDATA #IMPLIED
  standby  CDATA #IMPLIED
  height   CDATA #IMPLIED
  width    CDATA #IMPLIED
  usemap   CDATA #IMPLIED
  name     CDATA #IMPLIED
  tabindex NUMBER #IMPLIED
  align    (top|middle|bottom|left|right) #IMPLIED
  border   CDATA #IMPLIED
  hspace   NUMBER #IMPLIED
  vspace   NUMBER #IMPLIED>

<!ELEMENT APPLET - - (PARAM | %flow;)*>
<!ATTLIST APPLET
  %coreattrs;
  codebase CDATA #IMPLIED
  archive  CDATA #IMPLIED
  code     CDATA #IMPLIED
  object   CDATA #IMPLIED
  alt      CDATA #IMPLIED
  name     CDATA #IMPLIED
  width    CDATA #REQUIRED
  height   CDATA #REQUIRED
  align    (top|middle|bottom|left|right) #IMPLIED
  hspace   NUMBER #IMPLIED
  vspace   NUMBER #IMPLIED>

<!ELEMENT PARAM - O EMPTY>
<!ATTLIST PARAM
  id        ID    #IMPLIED
  name      CDATA #REQUIRED
  value     CDATA #IMPLIED
  valuetype (data|ref|object) data
  type      CDATA #IMPLIED>

<!ELEMENT UL - - (LI)+>
<!ATTLIST UL %attrs; type (disc|square|circle) #IMPLIED compact (compact) #IMPLIED>
<!ELEMENT OL - - (LI)+>
<!ATTLIST OL %attrs; type CDATA #IMPLIED start NUMBER #IMPLIED compact (compact) #IMPLIED>
<!ELEMENT (DIR|MENU) - - (LI)+ -(%block;)>
<!ATTLIST (DIR|MENU) %attrs; compact (compact) #IMPLIED>
<!ELEMENT LI - O (%flow;)*>
<!ATTLIST LI %attrs; type CDATA #IMPLIED value NUMBER #IMPLIED>

<!ELEMENT DL - - (DT|DD)+>
<!ATTLIST DL %attrs; compact (compact) #IMPLIED>
<!ELEMENT DT - O (%inline;)*>
<!ATTLIST DT %attrs;>
<!ELEMENT DD - O (%flow;)*>
<!ATTLIST DD %attrs;>

<!ELEMENT TABLE - - (CAPTION?, (COL*|COLGROUP*), THEAD?, TFOOT?, TBODY+)>
<!ATTLIST TABLE
  %attrs;
  summary     CDATA  #IMPLIED
  width       CDATA  #IMPLIED
  border      CDATA  #IMPLIED
  frame       (void|above|below|hsides|lhs|rhs|vsides|box|border) #IMPLIED
  rules       (none|groups|rows|cols|all) #IMPLIED
  cellspacing CDATA  #IMPLIED
  cellpadding CDATA  #IMPLIED
  align       (left|center|right) #IMPLIED
  bgcolor     CDATA  #IMPLIED>

<!ELEMENT CAPTION - - (%inline;)*>
<!ATTLIST CAPTION %attrs; align (top|bottom|left|right) #IMPLIED>

<!ENTITY % cellhalign
  "align  (left|center|right|justify|char) #IMPLIED
   char   CDATA #IMPLIED
   charoff CDATA #IMPLIED">
<!ENTITY % cellvalign "valign (top|middle|bottom|baseline) #IMPLIED">

<!ELEMENT THEAD - O (TR)+>
<!ATTLIST THEAD %attrs; %cellhalign; %cellvalign;>
<!ELEMENT TFOOT - O (TR)+>
<!ATTLIST TFOOT %attrs; %cellhalign; %cellvalign;>
<!ELEMENT TBODY O O (TR)+>
<!ATTLIST TBODY %attrs; %cellhalign; %cellvalign;>

<!ELEMENT COLGROUP - O (COL)*>
<!ATTLIST COLGROUP %attrs; span NUMBER 1 width CDATA #IMPLIED %cellhalign; %cellvalign;>
<!ELEMENT COL - O EMPTY>
<!ATTLIST COL %attrs; span NUMBER 1 width CDATA #IMPLIED %cellhalign; %cellvalign;>

<!ELEMENT TR - O (TD|TH)+>
<!ATTLIST TR %attrs; %cellhalign; %cellvalign; bgcolor CDATA #IMPLIED>

<!ELEMENT (TD|TH) - O (%flow;)*>
<!ATTLIST (TD|TH)
  %attrs;
  abbr    CDATA #IMPLIED
  axis    CDATA #IMPLIED
  headers CDATA #IMPLIED
  scope   (row|col|rowgroup|colgroup) #IMPLIED
  rowspan NUMBER 1
  colspan NUMBER 1
  %cellhalign;
  %cellvalign;
  nowrap  (nowrap) #IMPLIED
  bgcolor CDATA #IMPLIED
  width   CDATA #IMPLIED
  height  CDATA #IMPLIED>

<!ELEMENT FORM - - (%flow;)* -(FORM)>
<!ATTLIST FORM
  %attrs;
  action  CDATA #REQUIRED
  method  (get|post) get
  enctype CDATA "application/x-www-form-urlencoded"
  accept  CDATA #IMPLIED
  name    CDATA #IMPLIED
  target  CDATA #IMPLIED
  onsubmit CDATA #IMPLIED
  onreset  CDATA #IMPLIED
  accept-charset CDATA #IMPLIED>

<!ELEMENT INPUT - O EMPTY>
<!ATTLIST INPUT
  %attrs;
  type (text|password|checkbox|radio|submit|reset|file|hidden|image|button) text
  name      CDATA #IMPLIED
  value     CDATA #IMPLIED
  checked   (checked) #IMPLIED
  disabled  (disabled) #IMPLIED
  readonly  (readonly) #IMPLIED
  size      CDATA #IMPLIED
  maxlength NUMBER #IMPLIED
  src       CDATA #IMPLIED
  alt       CDATA #IMPLIED
  usemap    CDATA #IMPLIED
  tabindex  NUMBER #IMPLIED
  accesskey CDATA #IMPLIED
  onfocus   CDATA #IMPLIED
  onblur    CDATA #IMPLIED
  onselect  CDATA #IMPLIED
  onchange  CDATA #IMPLIED
  accept    CDATA #IMPLIED
  align     (top|middle|bottom|left|right) #IMPLIED>

<!ELEMENT SELECT - - (OPTGROUP|OPTION)+>
<!ATTLIST SELECT
  %attrs;
  name     CDATA #IMPLIED
  size     NUMBER #IMPLIED
  multiple (multiple) #IMPLIED
  disabled (disabled) #IMPLIED
  tabindex NUMBER #IMPLIED
  onfocus  CDATA #IMPLIED
  onblur   CDATA #IMPLIED
  onchange CDATA #IMPLIED>

<!ELEMENT OPTGROUP - - (OPTION)+>
<!ATTLIST OPTGROUP %attrs; disabled (disabled) #IMPLIED label CDATA #REQUIRED>

<!ELEMENT OPTION - O (#PCDATA)>
<!ATTLIST OPTION
  %attrs;
  selected (selected) #IMPLIED
  disabled (disabled) #IMPLIED
  label    CDATA #IMPLIED
  value    CDATA #IMPLIED>

<!ELEMENT TEXTAREA - - (#PCDATA)>
<!ATTLIST TEXTAREA
  %attrs;
  name     CDATA #IMPLIED
  rows     NUMBER #REQUIRED
  cols     NUMBER #REQUIRED
  disabled (disabled) #IMPLIED
  readonly (readonly) #IMPLIED
  tabindex NUMBER #IMPLIED
  accesskey CDATA #IMPLIED
  onfocus  CDATA #IMPLIED
  onblur   CDATA #IMPLIED
  onselect CDATA #IMPLIED
  onchange CDATA #IMPLIED>

<!ELEMENT FIELDSET - - (#PCDATA, LEGEND, (%flow;)*)>
<!ATTLIST FIELDSET %attrs;>
<!ELEMENT LEGEND - - (%inline;)*>
<!ATTLIST LEGEND %attrs; accesskey CDATA #IMPLIED align (top|bottom|left|right) #IMPLIED>

<!ELEMENT BUTTON - - (%flow;)* -(A|%formctrl;|FORM|ISINDEX|FIELDSET|IFRAME)>
<!ATTLIST BUTTON
  %attrs;
  name     CDATA #IMPLIED
  value    CDATA #IMPLIED
  type     (button|submit|reset) submit
  disabled (disabled) #IMPLIED
  tabindex NUMBER #IMPLIED
  accesskey CDATA #IMPLIED
  onfocus  CDATA #IMPLIED
  onblur   CDATA #IMPLIED>

<!ELEMENT LABEL - - (%inline;)* -(LABEL)>
<!ATTLIST LABEL %attrs; for IDREF #IMPLIED accesskey CDATA #IMPLIED onfocus CDATA #IMPLIED onblur CDATA #IMPLIED>

<!ELEMENT ISINDEX - O EMPTY>
<!ATTLIST ISINDEX %coreattrs; %i18n; prompt CDATA #IMPLIED>

<!ELEMENT IFRAME - - (%flow;)*>
<!ATTLIST IFRAME
  %coreattrs;
  longdesc CDATA #IMPLIED
  name     CDATA #IMPLIED
  src      CDATA #IMPLIED
  frameborder (1|0) 1
  marginwidth  NUMBER #IMPLIED
  marginheight NUMBER #IMPLIED
  scrolling (yes|no|auto) auto
  align    (top|middle|bottom|left|right) #IMPLIED
  height   CDATA #IMPLIED
  width    CDATA #IMPLIED>

<!ELEMENT NOFRAMES - - (%flow;)*>
<!ATTLIST NOFRAMES %attrs;>
`

// HTML40 returns the parsed embedded HTML 4.0 transitional subset DTD.
// The result is freshly parsed on each call so callers may mutate it.
func HTML40() *DTD {
	d := MustParse(HTML40Transitional)
	d.Name = "HTML 4.0 Transitional (subset)"
	return d
}
