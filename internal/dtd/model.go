// Package dtd implements a parser for the subset of SGML DTD syntax
// needed to describe HTML: parameter entities, element declarations
// with tag-omission flags and content models (including the SGML ','
// ';' '|' and '&' connectors, occurrence indicators, and
// inclusion/exclusion exceptions), and attribute list declarations.
//
// It implements the paper's Section 6.1 future-work item "driving
// weblint with a DTD: generating the HTML modules used by weblint",
// and powers the strict-validator baseline that weblint's heuristic
// checking is contrasted with in Sections 2 and 3.
package dtd

import (
	"fmt"
	"sort"
	"strings"
)

// Occurrence is an SGML occurrence indicator.
type Occurrence int

const (
	// One means exactly once (no indicator).
	One Occurrence = iota
	// Opt means optional: '?'.
	Opt
	// Star means zero or more: '*'.
	Star
	// Plus means one or more: '+'.
	Plus
)

// String renders the occurrence indicator.
func (o Occurrence) String() string {
	switch o {
	case Opt:
		return "?"
	case Star:
		return "*"
	case Plus:
		return "+"
	}
	return ""
}

// ModelKind is the kind of a content model node.
type ModelKind int

const (
	// MName matches one element by name.
	MName ModelKind = iota
	// MPCData matches document text (#PCDATA).
	MPCData
	// MSeq matches children in order (the ',' connector).
	MSeq
	// MChoice matches one alternative (the '|' connector).
	MChoice
	// MAll matches all children in any order (the '&' connector).
	MAll
)

// Model is one node of a content model expression tree.
type Model struct {
	Kind     ModelKind
	Name     string // for MName, lower-case
	Children []*Model
	Occur    Occurrence
}

// String renders the model in DTD syntax (canonical, for tests and
// debugging).
func (m *Model) String() string {
	var body string
	switch m.Kind {
	case MName:
		body = strings.ToUpper(m.Name)
	case MPCData:
		body = "#PCDATA"
	case MSeq, MChoice, MAll:
		sep := ","
		if m.Kind == MChoice {
			sep = "|"
		} else if m.Kind == MAll {
			sep = "&"
		}
		parts := make([]string, len(m.Children))
		for i, c := range m.Children {
			parts[i] = c.String()
		}
		body = "(" + strings.Join(parts, sep) + ")"
	}
	return body + m.Occur.String()
}

// Names returns the set of element names reachable anywhere in the
// model (used for "is X allowed at all inside Y" checks).
func (m *Model) Names() map[string]bool {
	out := map[string]bool{}
	m.collectNames(out)
	return out
}

func (m *Model) collectNames(out map[string]bool) {
	if m.Kind == MName {
		out[m.Name] = true
	}
	for _, c := range m.Children {
		c.collectNames(out)
	}
}

// ContentKind classifies an element's declared content.
type ContentKind int

const (
	// ContentModel means the element has a model expression.
	ContentModel ContentKind = iota
	// ContentEmpty means EMPTY: no content, no end tag.
	ContentEmpty
	// ContentCDATA means unparsed character data (SCRIPT, STYLE).
	ContentCDATA
	// ContentAny means ANY declared content.
	ContentAny
)

// AttrDefault classifies an attribute's default-value declaration.
type AttrDefault int

const (
	// DefImplied is #IMPLIED: the attribute is optional.
	DefImplied AttrDefault = iota
	// DefRequired is #REQUIRED: the attribute must be given.
	DefRequired
	// DefFixed is #FIXED "value".
	DefFixed
	// DefValue is a literal default value.
	DefValue
)

// AttrDecl is one attribute from an ATTLIST declaration.
type AttrDecl struct {
	Name string // lower-case
	// Type is the declared type keyword (CDATA, ID, NAME, NUMBER,
	// NMTOKEN, ...), or "enum" for an enumerated value list.
	Type string
	// Enum holds the enumerated values for "enum"-typed attributes,
	// lower-case.
	Enum []string
	// Default classifies the default declaration; Value holds the
	// literal for DefFixed and DefValue.
	Default AttrDefault
	Value   string
}

// ElementDecl is one ELEMENT declaration (after group expansion: one
// per element name).
type ElementDecl struct {
	Name string // lower-case
	// OmitStart and OmitEnd are the SGML tag-omission flags.
	OmitStart, OmitEnd bool
	// Content classifies the declared content.
	Content ContentKind
	// Model is the content model for ContentModel elements.
	Model *Model
	// Inclusions and Exclusions are the +(...) and -(...)
	// exceptions, lower-case element names.
	Inclusions []string
	Exclusions []string
	// Attrs maps lower-case attribute names to their declarations.
	Attrs map[string]*AttrDecl
}

// RequiredAttrs returns the names of #REQUIRED attributes, sorted.
func (e *ElementDecl) RequiredAttrs() []string {
	var out []string
	for _, a := range e.Attrs {
		if a.Default == DefRequired {
			out = append(out, a.Name)
		}
	}
	sort.Strings(out)
	return out
}

// DTD is a parsed document type definition.
type DTD struct {
	// Name is the document type name from a DOCTYPE-style header
	// comment, or empty.
	Name string
	// Elements maps lower-case element names to declarations.
	Elements map[string]*ElementDecl
	// Entities holds the parameter entity texts by name.
	Entities map[string]string
}

// Element looks up an element declaration case-insensitively.
func (d *DTD) Element(name string) *ElementDecl {
	return d.Elements[strings.ToLower(name)]
}

// ElementNames returns all declared element names, sorted.
func (d *DTD) ElementNames() []string {
	out := make([]string, 0, len(d.Elements))
	for n := range d.Elements {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ParseError reports a DTD syntax error with byte offset context.
type ParseError struct {
	Offset int
	Msg    string
}

// Error formats the parse error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("dtd: offset %d: %s", e.Offset, e.Msg)
}
