package dtd

import (
	"strings"
	"testing"
)

func TestParseSimpleElement(t *testing.T) {
	d, err := Parse(`<!ELEMENT P - O (#PCDATA)>`)
	if err != nil {
		t.Fatal(err)
	}
	e := d.Element("P")
	if e == nil {
		t.Fatal("P not declared")
	}
	if e.OmitStart || !e.OmitEnd {
		t.Errorf("omission flags = %v/%v, want false/true", e.OmitStart, e.OmitEnd)
	}
	if e.Content != ContentModel || e.Model.Kind != MPCData {
		t.Errorf("content = %v, model = %v", e.Content, e.Model)
	}
}

func TestParseEmptyAndCDATA(t *testing.T) {
	d := MustParse(`
<!ELEMENT BR - O EMPTY>
<!ELEMENT STYLE - - CDATA>
<!ELEMENT X - - ANY>
`)
	if d.Element("br").Content != ContentEmpty {
		t.Error("BR not EMPTY")
	}
	if d.Element("style").Content != ContentCDATA {
		t.Error("STYLE not CDATA")
	}
	if d.Element("x").Content != ContentAny {
		t.Error("X not ANY")
	}
}

func TestParseEntityExpansion(t *testing.T) {
	d := MustParse(`
<!ENTITY % list "UL | OL">
<!ELEMENT LI - O (#PCDATA)>
<!ELEMENT (%list;) - - (LI)+>
`)
	for _, n := range []string{"ul", "ol"} {
		e := d.Element(n)
		if e == nil {
			t.Fatalf("%s not declared via entity group", n)
		}
		if e.Model == nil || e.Model.Kind != MName || e.Model.Name != "li" || e.Model.Occur != Plus {
			t.Errorf("%s model = %v", n, e.Model)
		}
	}
}

func TestParseNestedEntities(t *testing.T) {
	d := MustParse(`
<!ENTITY % a "X">
<!ENTITY % b "%a; | Y">
<!ELEMENT Z - - (%b;)*>
`)
	names := d.Element("z").Model.Names()
	if !names["x"] || !names["y"] {
		t.Errorf("expanded names = %v", names)
	}
}

func TestParseSequenceModel(t *testing.T) {
	d := MustParse(`<!ELEMENT HTML O O (HEAD, BODY)>`)
	m := d.Element("html").Model
	if m.Kind != MSeq || len(m.Children) != 2 {
		t.Fatalf("model = %v", m)
	}
	if m.Children[0].Name != "head" || m.Children[1].Name != "body" {
		t.Errorf("sequence = %s", m)
	}
}

func TestParseChoiceWithOccurrence(t *testing.T) {
	d := MustParse(`<!ELEMENT DL - - (DT|DD)+>`)
	m := d.Element("dl").Model
	if m.Kind != MChoice || m.Occur != Plus || len(m.Children) != 2 {
		t.Fatalf("model = %s", m)
	}
}

func TestParseAllConnector(t *testing.T) {
	d := MustParse(`<!ELEMENT HEAD O O (TITLE & BASE?)>`)
	m := d.Element("head").Model
	if m.Kind != MAll || len(m.Children) != 2 {
		t.Fatalf("model = %s", m)
	}
	if m.Children[1].Name != "base" || m.Children[1].Occur != Opt {
		t.Errorf("BASE? = %v", m.Children[1])
	}
}

func TestParseExceptions(t *testing.T) {
	d := MustParse(`
<!ENTITY % misc "META|LINK">
<!ELEMENT A - - (#PCDATA)* -(A)>
<!ELEMENT HEAD O O (TITLE) +(%misc;)>
`)
	a := d.Element("a")
	if len(a.Exclusions) != 1 || a.Exclusions[0] != "a" {
		t.Errorf("exclusions = %v", a.Exclusions)
	}
	h := d.Element("head")
	if len(h.Inclusions) != 2 || h.Inclusions[0] != "meta" {
		t.Errorf("inclusions = %v", h.Inclusions)
	}
}

func TestParseAttlist(t *testing.T) {
	d := MustParse(`
<!ELEMENT IMG - O EMPTY>
<!ATTLIST IMG
  src   CDATA #REQUIRED
  alt   CDATA #REQUIRED
  align (top|middle|bottom) #IMPLIED
  ismap (ismap) #IMPLIED
  width NUMBER #IMPLIED
  border CDATA "0">
`)
	e := d.Element("img")
	if got := strings.Join(e.RequiredAttrs(), ","); got != "alt,src" {
		t.Errorf("required = %s", got)
	}
	al := e.Attrs["align"]
	if al.Type != "enum" || len(al.Enum) != 3 || al.Enum[0] != "top" {
		t.Errorf("align = %+v", al)
	}
	if e.Attrs["width"].Type != "NUMBER" {
		t.Errorf("width type = %s", e.Attrs["width"].Type)
	}
	b := e.Attrs["border"]
	if b.Default != DefValue || b.Value != "0" {
		t.Errorf("border default = %+v", b)
	}
}

func TestParseAttlistEntitySplicing(t *testing.T) {
	d := MustParse(`
<!ENTITY % core "id ID #IMPLIED class CDATA #IMPLIED">
<!ELEMENT P - O (#PCDATA)>
<!ATTLIST P %core; align (left|right) #IMPLIED>
`)
	e := d.Element("p")
	if e.Attrs["id"] == nil || e.Attrs["class"] == nil || e.Attrs["align"] == nil {
		t.Errorf("attrs = %v", e.Attrs)
	}
	if e.Attrs["id"].Type != "ID" {
		t.Errorf("id type = %s", e.Attrs["id"].Type)
	}
}

func TestAttlistBeforeElement(t *testing.T) {
	d := MustParse(`
<!ATTLIST Q cite CDATA #IMPLIED>
<!ELEMENT Q - - (#PCDATA)>
`)
	e := d.Element("q")
	if e.Content != ContentModel || e.Attrs["cite"] == nil {
		t.Errorf("merge failed: %+v", e)
	}
}

func TestParseFixed(t *testing.T) {
	d := MustParse(`
<!ELEMENT X - - (#PCDATA)>
<!ATTLIST X version CDATA #FIXED "4.0">
`)
	a := d.Element("x").Attrs["version"]
	if a.Default != DefFixed || a.Value != "4.0" {
		t.Errorf("fixed attr = %+v", a)
	}
}

func TestParseInlineComments(t *testing.T) {
	d := MustParse(`
<!ELEMENT P - O (#PCDATA) -- paragraph -->
<!-- standalone comment -->
<!ELEMENT B - - (#PCDATA)>
`)
	if d.Element("p") == nil || d.Element("b") == nil {
		t.Error("declarations around comments lost")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`<!ELEMENT >`,
		`<!ELEMENT P X O (#PCDATA)>`,
		`<!ELEMENT P - O>`,
		`junk`,
		`<!ELEMENT P - O (#PCDATA`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) did not error", src)
		}
	}
}

func TestParseErrorMessage(t *testing.T) {
	_, err := Parse(`<!ELEMENT P X O (#PCDATA)>`)
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if !strings.Contains(pe.Error(), "offset") {
		t.Errorf("error = %v", pe)
	}
}

func TestModelString(t *testing.T) {
	d := MustParse(`<!ELEMENT T - - (CAPTION?, (COL*|THEAD), TR+)>`)
	got := d.Element("t").Model.String()
	want := "(CAPTION?,(COL*|THEAD),TR+)"
	if got != want {
		t.Errorf("model string = %s, want %s", got, want)
	}
}

func TestModelNames(t *testing.T) {
	d := MustParse(`<!ELEMENT X - - (A, (B|C)*, #PCDATA)>`)
	names := d.Element("x").Model.Names()
	for _, n := range []string{"a", "b", "c"} {
		if !names[n] {
			t.Errorf("missing %s in %v", n, names)
		}
	}
	if len(names) != 3 {
		t.Errorf("names = %v", names)
	}
}

func TestOccurrenceString(t *testing.T) {
	if One.String() != "" || Opt.String() != "?" || Star.String() != "*" || Plus.String() != "+" {
		t.Error("occurrence strings wrong")
	}
}

// TestEmbeddedHTML40Parses is the gate for everything downstream: the
// embedded DTD must parse and contain the core elements with correct
// structure.
func TestEmbeddedHTML40Parses(t *testing.T) {
	d := HTML40()
	if len(d.Elements) < 60 {
		t.Errorf("embedded DTD has %d elements, want >= 60", len(d.Elements))
	}
	html := d.Element("html")
	if html == nil || html.Model == nil || html.Model.Kind != MSeq {
		t.Fatalf("HTML decl = %+v", html)
	}
	head := d.Element("head")
	if head.Model.Kind != MAll {
		t.Errorf("HEAD model = %s", head.Model)
	}
	if len(head.Inclusions) == 0 {
		t.Error("HEAD inclusions missing")
	}
	a := d.Element("a")
	if len(a.Exclusions) != 1 || a.Exclusions[0] != "a" {
		t.Errorf("A exclusions = %v", a.Exclusions)
	}
	img := d.Element("img")
	if img.Content != ContentEmpty {
		t.Error("IMG not EMPTY")
	}
	if got := strings.Join(img.RequiredAttrs(), ","); got != "alt,src" {
		t.Errorf("IMG required = %s", got)
	}
	table := d.Element("table")
	if table.Model.String() != "(CAPTION?,(COL*|COLGROUP*),THEAD?,TFOOT?,TBODY+)" {
		t.Errorf("TABLE model = %s", table.Model)
	}
	script := d.Element("script")
	if script.Content != ContentCDATA {
		t.Error("SCRIPT not CDATA")
	}
	// Entity-spliced attributes landed on elements.
	if d.Element("p").Attrs["onclick"] == nil {
		t.Error("P missing attrs-entity-spliced events")
	}
	if d.Element("td").Attrs["valign"] == nil {
		t.Error("TD missing cellvalign entity attributes")
	}
}

func TestElementNamesSorted(t *testing.T) {
	names := HTML40().ElementNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("not sorted: %s >= %s", names[i-1], names[i])
		}
	}
}
