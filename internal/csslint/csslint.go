// Package csslint is a content-checker plugin validating CSS1 style
// sheets embedded in STYLE elements: the worked example of the paper's
// Section 6.1 plugin idea ("to validate stylesheets").
//
// The checker is, in weblint's spirit, not a strict CSS parser: it
// tokenises rule sets leniently, checks declaration syntax, property
// names against the CSS1 property table, and the values of
// color-taking properties.
package csslint

import (
	"strings"

	"weblint/internal/htmlspec"
	"weblint/internal/plugin"
	"weblint/internal/warn"
)

func init() {
	warn.Register(warn.Def{
		ID: "style-unknown-property", Category: warn.Warning, Default: true,
		Format:  "unknown style property \"%s\"",
		Explain: "The property is not defined by CSS1; this is most often a typo such as \"colour\".",
	})
	warn.Register(warn.Def{
		ID: "style-bad-color", Category: warn.Error, Default: true,
		Format:  "illegal color value \"%s\" for style property %s",
		Explain: "CSS color values are a color name, #rgb or #rrggbb triplet, or rgb(r,g,b).",
	})
	warn.Register(warn.Def{
		ID: "style-syntax", Category: warn.Error, Default: true,
		Format:  "style sheet syntax error: %s",
		Explain: "The declaration could not be parsed; check for missing colons, semicolons or braces.",
	})
}

// Checker is the CSS1 plugin. The zero value is ready to use.
type Checker struct{}

var _ plugin.ContentChecker = Checker{}

// Name identifies the plugin.
func (Checker) Name() string { return "csslint" }

// Elements claims STYLE element content.
func (Checker) Elements() []string { return []string{"style"} }

// css1Properties is the CSS1 property table.
var css1Properties = map[string]bool{
	"font-family": true, "font-style": true, "font-variant": true,
	"font-weight": true, "font-size": true, "font": true,
	"color": true, "background-color": true, "background-image": true,
	"background-repeat": true, "background-attachment": true,
	"background-position": true, "background": true,
	"word-spacing": true, "letter-spacing": true, "text-decoration": true,
	"vertical-align": true, "text-transform": true, "text-align": true,
	"text-indent": true, "line-height": true,
	"margin-top": true, "margin-right": true, "margin-bottom": true,
	"margin-left": true, "margin": true,
	"padding-top": true, "padding-right": true, "padding-bottom": true,
	"padding-left": true, "padding": true,
	"border-top-width": true, "border-right-width": true,
	"border-bottom-width": true, "border-left-width": true,
	"border-width": true, "border-top": true, "border-right": true,
	"border-bottom": true, "border-left": true, "border": true,
	"border-style": true, "border-color": true,
	"width": true, "height": true, "float": true, "clear": true,
	"display": true, "white-space": true,
	"list-style-type": true, "list-style-image": true,
	"list-style-position": true, "list-style": true,
}

// colorProperties take a single color value.
var colorProperties = map[string]bool{
	"color": true, "background-color": true, "border-color": true,
}

// Check validates the style sheet text.
func (Checker) Check(content string, baseLine int, report plugin.Report) {
	text, offset := stripHiding(content)
	text, err := stripComments(text)
	if err != "" {
		report("style-syntax", baseLine, err)
		return
	}

	// Block positions are visited in ascending offset order, so one
	// monotone cursor walks the sheet's newlines exactly once — the
	// from-zero lineOf rescan per block made error-dense sheets
	// quadratic in the same way core's old lineOffset did.
	lc := lineCursor{text: text}
	depth := 0
	declStart := 0
	inDecls := false
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '{':
			depth++
			if depth == 1 {
				inDecls = true
				declStart = i + 1
			}
		case '}':
			depth--
			if depth < 0 {
				report("style-syntax", baseLine+offset+lc.lineAt(i), "unmatched '}'")
				return
			}
			if depth == 0 && inDecls {
				checkDeclarations(text[declStart:i], baseLine+offset+lc.lineAt(declStart), report)
				inDecls = false
			}
		}
	}
	if depth > 0 {
		report("style-syntax", baseLine+offset+lc.lineAt(len(text)-1), "unclosed '{'")
	}
}

// lineCursor incrementally counts newlines before ascending offsets;
// see lineAt. (A twin of core's cursor, local because neither package
// can import the other without widening their APIs for a 15-liner.)
type lineCursor struct {
	text string
	pos  int
	line int
}

// lineAt returns the number of newlines before offset; offsets must be
// non-decreasing across calls.
func (lc *lineCursor) lineAt(offset int) int {
	if offset > len(lc.text) {
		offset = len(lc.text)
	}
	if offset > lc.pos {
		lc.line += strings.Count(lc.text[lc.pos:offset], "\n")
		lc.pos = offset
	}
	return lc.line
}

// checkDeclarations validates one "prop: value; ..." block. blockLine
// is the document line the block starts on.
func checkDeclarations(block string, blockLine int, report plugin.Report) {
	// Declarations are walked by index with a monotone cursor (and no
	// strings.Split allocation): the block's newlines are counted once
	// however many declarations — or findings — it holds.
	lc := lineCursor{text: block}
	for start := 0; start <= len(block); {
		end := strings.IndexByte(block[start:], ';')
		if end < 0 {
			end = len(block)
		} else {
			end += start
		}
		decl := block[start:end]
		declLine := blockLine + lc.lineAt(start)
		start = end + 1
		d := strings.TrimSpace(decl)
		if d == "" {
			continue
		}
		declLine += leadingNewlines(decl)
		colon := strings.IndexByte(d, ':')
		if colon < 0 {
			report("style-syntax", declLine, "declaration \""+truncate(d, 40)+"\" is missing ':'")
			continue
		}
		prop := strings.ToLower(strings.TrimSpace(d[:colon]))
		value := strings.TrimSpace(d[colon+1:])
		if prop == "" || strings.ContainsAny(prop, " \t\n") {
			report("style-syntax", declLine, "malformed property name \""+truncate(prop, 40)+"\"")
			continue
		}
		if !css1Properties[prop] {
			report("style-unknown-property", declLine, prop)
			continue
		}
		if colorProperties[prop] && !validCSSColor(value) {
			report("style-bad-color", declLine, value, prop)
		}
	}
}

// validCSSColor accepts CSS1 color forms: names, #rgb, #rrggbb, and
// rgb(r, g, b) with numbers or percentages.
func validCSSColor(v string) bool {
	v = strings.TrimSpace(strings.ToLower(v))
	if v == "" {
		return false
	}
	if htmlspec.ValidColor(v) {
		return true
	}
	if strings.HasPrefix(v, "#") && len(v) == 4 {
		for i := 1; i < 4; i++ {
			if !isHex(v[i]) {
				return false
			}
		}
		return true
	}
	if strings.HasPrefix(v, "rgb(") && strings.HasSuffix(v, ")") {
		parts := strings.Split(v[4:len(v)-1], ",")
		if len(parts) != 3 {
			return false
		}
		for _, p := range parts {
			p = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(p), "%"))
			if p == "" {
				return false
			}
			for j := 0; j < len(p); j++ {
				if p[j] < '0' || p[j] > '9' {
					return false
				}
			}
		}
		return true
	}
	return false
}

// stripHiding removes the SGML comment markers old pages wrap style
// content in (<!-- ... -->), preserving line counts.
func stripHiding(content string) (string, int) {
	trimmed := strings.TrimSpace(content)
	if !strings.HasPrefix(trimmed, "<!--") {
		return content, 0
	}
	start := strings.Index(content, "<!--")
	body := content[start+4:]
	if end := strings.LastIndex(body, "-->"); end >= 0 {
		body = body[:end]
	}
	return body, strings.Count(content[:start+4], "\n")
}

// stripComments blanks out /* */ comments (preserving newlines so line
// numbers survive); a non-empty return string is an error description.
func stripComments(text string) (string, string) {
	var b strings.Builder
	b.Grow(len(text))
	for i := 0; i < len(text); {
		if strings.HasPrefix(text[i:], "/*") {
			end := strings.Index(text[i+2:], "*/")
			if end < 0 {
				return "", "unterminated /* comment"
			}
			for _, ch := range text[i : i+2+end+2] {
				if ch == '\n' {
					b.WriteByte('\n')
				} else {
					b.WriteByte(' ')
				}
			}
			i += 2 + end + 2
			continue
		}
		b.WriteByte(text[i])
		i++
	}
	return b.String(), ""
}

func leadingNewlines(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\n':
			n++
		case ' ', '\t', '\r':
		default:
			return n
		}
	}
	return n
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
