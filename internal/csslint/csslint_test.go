package csslint

import (
	"fmt"
	"strings"
	"testing"

	"weblint/internal/plugin"
)

type rec struct {
	id   string
	line int
}

func check(t *testing.T, css string) []rec {
	t.Helper()
	var out []rec
	Checker{}.Check(css, 1, func(id string, line int, args ...any) {
		out = append(out, rec{id, line})
	})
	return out
}

func hasID(recs []rec, id string) bool {
	for _, r := range recs {
		if r.id == id {
			return true
		}
	}
	return false
}

func TestCleanStylesheet(t *testing.T) {
	css := `
H1 { color: navy; font-size: 18pt }
P, LI { margin-left: 2em; line-height: 1.2 }
.warning { color: #f00; background-color: rgb(255, 240, 240) }
`
	if recs := check(t, css); len(recs) != 0 {
		t.Fatalf("clean stylesheet produced %v", recs)
	}
}

func TestUnknownProperty(t *testing.T) {
	recs := check(t, "P { colour: red }")
	if !hasID(recs, "style-unknown-property") {
		t.Errorf("recs = %v", recs)
	}
	// CSS2+ properties are unknown to the CSS1 table.
	if !hasID(check(t, "P { position: absolute }"), "style-unknown-property") {
		t.Error("CSS2 property accepted")
	}
}

func TestBadColor(t *testing.T) {
	for _, css := range []string{
		"P { color: fffff }",
		"P { color: #fffff }",
		"P { color: reddish }",
		"P { background-color: rgb(1,2) }",
		"P { color: rgb(a,b,c) }",
	} {
		if !hasID(check(t, css), "style-bad-color") {
			t.Errorf("%q not flagged", css)
		}
	}
	for _, css := range []string{
		"P { color: #f00 }",
		"P { color: #ff0000 }",
		"P { color: RED }",
		"P { color: rgb(255, 0, 0) }",
		"P { color: rgb(100%, 0%, 0%) }",
	} {
		if recs := check(t, css); len(recs) != 0 {
			t.Errorf("%q flagged: %v", css, recs)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := map[string]string{
		"P { color red }":     "missing ':'",
		"P { color: red ":     "unclosed '{'",
		"P } color: red {":    "unmatched '}'",
		"P { /* unterminated": "unterminated",
	}
	for css := range cases {
		if !hasID(check(t, css), "style-syntax") {
			t.Errorf("%q produced no style-syntax", css)
		}
	}
}

func TestCommentsIgnored(t *testing.T) {
	css := "/* colour: wrong } { */ P { color: red } /* another */"
	if recs := check(t, css); len(recs) != 0 {
		t.Errorf("comment content checked: %v", recs)
	}
}

func TestSGMLHidingStripped(t *testing.T) {
	css := "<!--\nP { color: red }\n-->"
	if recs := check(t, css); len(recs) != 0 {
		t.Errorf("hidden stylesheet mis-parsed: %v", recs)
	}
}

func TestLineNumbers(t *testing.T) {
	css := "H1 { color: navy }\nP {\n  colour: red;\n  color: bogus\n}\n"
	recs := check(t, css)
	if len(recs) != 2 {
		t.Fatalf("recs = %v", recs)
	}
	if recs[0].line != 3 {
		t.Errorf("unknown-property at line %d, want 3", recs[0].line)
	}
	if recs[1].line != 4 {
		t.Errorf("bad-color at line %d, want 4", recs[1].line)
	}
}

func TestBaseLineOffset(t *testing.T) {
	var got int
	Checker{}.Check("P { colour: x }", 40, func(id string, line int, args ...any) {
		got = line
	})
	if got != 40 {
		t.Errorf("line = %d, want 40", got)
	}
}

func TestInterface(t *testing.T) {
	var p plugin.ContentChecker = Checker{}
	if p.Name() != "csslint" {
		t.Error("name")
	}
	if els := p.Elements(); len(els) != 1 || els[0] != "style" {
		t.Errorf("elements = %v", els)
	}
	if plugin.ForElement([]plugin.ContentChecker{p}, "style") == nil {
		t.Error("ForElement lookup failed")
	}
	if plugin.ForElement([]plugin.ContentChecker{p}, "script") != nil {
		t.Error("ForElement matched wrong element")
	}
}

func TestEmptyDeclarationsTolerated(t *testing.T) {
	if recs := check(t, "P { ; ; color: red ; }"); len(recs) != 0 {
		t.Errorf("empty declarations flagged: %v", recs)
	}
}

// TestDenseErrorsExactLines pins line numbers for findings deep inside
// a large generated sheet: every rule carries one unknown property,
// one bad color, and one broken declaration, and each must be reported
// on its own sheet line. Before the monotone line cursor, each finding
// rescanned the sheet from the top (quadratic on error-dense sheets);
// the cursor must still land every finding on the right line.
func TestDenseErrorsExactLines(t *testing.T) {
	const blocks = 300
	var b strings.Builder
	b.WriteByte('\n')
	for i := 0; i < blocks; i++ {
		fmt.Fprintf(&b, ".c%d {\n colour: red;\n color: notacolor%d;\n margin: 0;\n broken decl\n}\n", i, i)
	}
	recs := check(t, b.String())

	want := map[string]int{
		"style-unknown-property": blocks, // colour
		"style-bad-color":        blocks, // notacolorN
		"style-syntax":           blocks, // broken decl (missing ':')
	}
	got := map[string]int{}
	for _, r := range recs {
		got[r.id]++
	}
	for id, n := range want {
		if got[id] != n {
			t.Errorf("%s: got %d findings, want %d", id, got[id], n)
		}
	}

	// Each block spans 6 sheet lines starting at line 2 (after the
	// leading newline): selector, colour, color, margin, broken, '}'.
	for _, r := range recs {
		blockStart := 2 + 6*((r.line-2)/6)
		var wantLine int
		switch r.id {
		case "style-unknown-property":
			wantLine = blockStart + 1
		case "style-bad-color":
			wantLine = blockStart + 2
		case "style-syntax":
			wantLine = blockStart + 4
		default:
			t.Fatalf("unexpected finding %v", r)
		}
		if r.line != wantLine {
			t.Fatalf("%s at line %d, want %d (block starting line %d)", r.id, r.line, wantLine, blockStart)
		}
	}
}
