// Package textpos maps byte offsets in a document to line-based
// positions and back. It is the shared position layer under the LSP
// server (which speaks 0-based lines and UTF-16 code-unit columns, the
// protocol's mandated encoding) and the baseline fingerprinter (which
// hashes the source line a finding sits on).
//
// Line separators follow the LSP convention: "\n", "\r\n" and a lone
// "\r" each end a line. Columns are counted in UTF-16 code units —
// one unit per BMP rune, two per astral-plane rune (surrogate pair),
// and one per invalid UTF-8 byte (which mirrors how editors decode
// such bytes as one replacement character each).
package textpos

import "unicode/utf8"

// Index is an immutable line index over one document. Construct with
// New; the zero value indexes the empty document.
type Index struct {
	src string
	// starts holds the byte offset of each line's first byte. Line 0
	// starts at 0; there is always at least one line.
	starts []int
}

// New builds an index over src.
func New(src string) *Index {
	starts := []int{0}
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '\n':
			starts = append(starts, i+1)
		case '\r':
			if i+1 < len(src) && src[i+1] == '\n' {
				i++
			}
			starts = append(starts, i+1)
		}
	}
	return &Index{src: src, starts: starts}
}

// Len returns the document length in bytes.
func (ix *Index) Len() int { return len(ix.src) }

// LineCount returns the number of lines. A trailing separator opens a
// final empty line, matching how editors count.
func (ix *Index) LineCount() int { return len(ix.starts) }

// LineStart returns the byte offset of the first byte of the 0-based
// line, clamping out-of-range lines to the nearest valid one.
func (ix *Index) LineStart(line int) int {
	if line < 0 {
		return 0
	}
	if line >= len(ix.starts) {
		return len(ix.src)
	}
	return ix.starts[line]
}

// lineEnd returns the offset one past the last content byte of the
// line, excluding its separator.
func (ix *Index) lineEnd(line int) int {
	if line < 0 {
		return 0
	}
	if line >= len(ix.starts) {
		return len(ix.src)
	}
	end := len(ix.src)
	if line+1 < len(ix.starts) {
		end = ix.starts[line+1]
		// Strip the separator: "\r\n", "\n" or "\r".
		if end > 0 && ix.src[end-1] == '\n' {
			end--
		}
		if end > 0 && ix.src[end-1] == '\r' {
			end--
		}
	}
	return end
}

// LineText returns the content of the 0-based line without its
// separator. Out-of-range lines return "".
func (ix *Index) LineText(line int) string {
	if line < 0 || line >= len(ix.starts) {
		return ""
	}
	return ix.src[ix.starts[line]:ix.lineEnd(line)]
}

// OffsetLine returns the 0-based line containing the byte offset.
// Offsets past the end map to the last line; negative offsets to 0.
func (ix *Index) OffsetLine(off int) int {
	if off < 0 {
		return 0
	}
	lo, hi := 0, len(ix.starts) // invariant: starts[lo] <= off < starts[hi]
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if ix.starts[mid] <= off {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// OffsetToUTF16 converts a byte offset to a (0-based line, UTF-16
// code-unit column) position. An offset inside a multi-byte rune
// counts as the rune's start; an offset inside the line's "\r\n"
// separator clamps to the end of the line's content; offsets past the
// end clamp to the end of the document.
func (ix *Index) OffsetToUTF16(off int) (line, char int) {
	if off > len(ix.src) {
		off = len(ix.src)
	}
	if off < 0 {
		off = 0
	}
	line = ix.OffsetLine(off)
	start := ix.starts[line]
	if end := ix.lineEnd(line); off > end {
		off = end
	}
	for i := start; i < off; {
		r, size := utf8.DecodeRuneInString(ix.src[i:])
		if r == utf8.RuneError && size <= 1 {
			// Invalid byte: one unit, one byte.
			char++
			i++
			continue
		}
		if i+size > off {
			break // off is inside this rune: report the rune's start
		}
		char += utf16Len(r)
		i += size
	}
	return line, char
}

// UTF16ToOffset converts a (0-based line, UTF-16 code-unit column)
// position to a byte offset. Columns past the end of the line clamp to
// the line end (the LSP convention); a column landing inside a
// surrogate pair maps to the astral rune's start. Out-of-range lines
// clamp to the document bounds.
func (ix *Index) UTF16ToOffset(line, char int) int {
	if line < 0 {
		return 0
	}
	if line >= len(ix.starts) {
		return len(ix.src)
	}
	i, end := ix.starts[line], ix.lineEnd(line)
	for units := 0; i < end && units < char; {
		r, size := utf8.DecodeRuneInString(ix.src[i:end])
		if r == utf8.RuneError && size <= 1 {
			units++
			i++
			continue
		}
		u := utf16Len(r)
		if units+u > char {
			return i // char splits a surrogate pair: rune start
		}
		units += u
		i += size
	}
	return i
}

// utf16Len returns the UTF-16 code-unit length of a rune.
func utf16Len(r rune) int {
	if r >= 0x10000 {
		return 2
	}
	return 1
}
