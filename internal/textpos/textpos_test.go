package textpos

import (
	"strings"
	"testing"
	"unicode/utf16"
)

func TestLineIndexBasics(t *testing.T) {
	ix := New("one\ntwo\nthree")
	if got := ix.LineCount(); got != 3 {
		t.Fatalf("LineCount = %d, want 3", got)
	}
	for i, want := range []string{"one", "two", "three"} {
		if got := ix.LineText(i); got != want {
			t.Errorf("LineText(%d) = %q, want %q", i, got, want)
		}
	}
	if got := ix.OffsetLine(4); got != 1 {
		t.Errorf("OffsetLine(4) = %d, want 1", got)
	}
	if got := ix.LineText(-1); got != "" {
		t.Errorf("LineText(-1) = %q", got)
	}
	if got := ix.LineText(99); got != "" {
		t.Errorf("LineText(99) = %q", got)
	}
}

func TestLineSeparators(t *testing.T) {
	// \n, \r\n and lone \r all end lines (the LSP convention).
	ix := New("a\r\nb\rc\nd")
	if got := ix.LineCount(); got != 4 {
		t.Fatalf("LineCount = %d, want 4", got)
	}
	for i, want := range []string{"a", "b", "c", "d"} {
		if got := ix.LineText(i); got != want {
			t.Errorf("LineText(%d) = %q, want %q", i, got, want)
		}
	}
	// The byte after \r\n is line 1's start.
	if got := ix.LineStart(1); got != 3 {
		t.Errorf("LineStart(1) = %d, want 3", got)
	}
	// An offset pointing at the \n of \r\n still belongs to line 0.
	if line, char := ix.OffsetToUTF16(2); line != 0 || char != 1 {
		t.Errorf("OffsetToUTF16(2) = (%d,%d), want (0,1)", line, char)
	}
}

func TestTrailingSeparatorOpensEmptyLine(t *testing.T) {
	ix := New("a\n")
	if got := ix.LineCount(); got != 2 {
		t.Fatalf("LineCount = %d, want 2", got)
	}
	if got := ix.LineText(1); got != "" {
		t.Errorf("LineText(1) = %q, want empty", got)
	}
	if got := ix.UTF16ToOffset(1, 0); got != 2 {
		t.Errorf("UTF16ToOffset(1,0) = %d, want 2", got)
	}
}

func TestEmptyDocument(t *testing.T) {
	ix := New("")
	if got := ix.LineCount(); got != 1 {
		t.Fatalf("LineCount = %d, want 1", got)
	}
	if line, char := ix.OffsetToUTF16(0); line != 0 || char != 0 {
		t.Errorf("OffsetToUTF16(0) = (%d,%d)", line, char)
	}
	if got := ix.UTF16ToOffset(0, 5); got != 0 {
		t.Errorf("UTF16ToOffset(0,5) = %d", got)
	}
}

func TestUTF16AstralPlane(t *testing.T) {
	// 😀 is U+1F600: 4 UTF-8 bytes, 2 UTF-16 units.
	src := "a😀b"
	ix := New(src)
	if line, char := ix.OffsetToUTF16(1); line != 0 || char != 1 {
		t.Errorf("offset of 😀 = (%d,%d), want (0,1)", line, char)
	}
	if line, char := ix.OffsetToUTF16(5); line != 0 || char != 3 {
		t.Errorf("offset of b = (%d,%d), want (0,3)", line, char)
	}
	if got := ix.UTF16ToOffset(0, 3); got != 5 {
		t.Errorf("UTF16ToOffset(0,3) = %d, want 5", got)
	}
	// A column inside the surrogate pair maps to the rune's start.
	if got := ix.UTF16ToOffset(0, 2); got != 1 {
		t.Errorf("UTF16ToOffset(0,2) = %d, want 1 (rune start)", got)
	}
	// An offset inside the rune's bytes reports the rune's start.
	if line, char := ix.OffsetToUTF16(3); line != 0 || char != 1 {
		t.Errorf("OffsetToUTF16(3) = (%d,%d), want (0,1)", line, char)
	}
}

func TestUTF16BMPMultibyte(t *testing.T) {
	// é is 2 UTF-8 bytes, 1 UTF-16 unit; 日 is 3 bytes, 1 unit.
	src := "é日x"
	ix := New(src)
	if line, char := ix.OffsetToUTF16(2); line != 0 || char != 1 {
		t.Errorf("offset of 日 = (%d,%d), want (0,1)", line, char)
	}
	if line, char := ix.OffsetToUTF16(5); line != 0 || char != 2 {
		t.Errorf("offset of x = (%d,%d), want (0,2)", line, char)
	}
	if got := ix.UTF16ToOffset(0, 2); got != 5 {
		t.Errorf("UTF16ToOffset(0,2) = %d, want 5", got)
	}
}

func TestInvalidUTF8(t *testing.T) {
	// Two raw 0xFF bytes: one unit each.
	src := "a\xff\xffb"
	ix := New(src)
	if line, char := ix.OffsetToUTF16(3); line != 0 || char != 3 {
		t.Errorf("offset of b = (%d,%d), want (0,3)", line, char)
	}
	if got := ix.UTF16ToOffset(0, 3); got != 3 {
		t.Errorf("UTF16ToOffset(0,3) = %d, want 3", got)
	}
}

func TestEdgesAtEOF(t *testing.T) {
	src := "ab\ncd"
	ix := New(src)
	// Offset exactly at EOF (an edit appending at the end).
	if line, char := ix.OffsetToUTF16(len(src)); line != 1 || char != 2 {
		t.Errorf("OffsetToUTF16(EOF) = (%d,%d), want (1,2)", line, char)
	}
	// Past-EOF clamps.
	if line, char := ix.OffsetToUTF16(len(src) + 10); line != 1 || char != 2 {
		t.Errorf("OffsetToUTF16(EOF+10) = (%d,%d), want (1,2)", line, char)
	}
	if got := ix.UTF16ToOffset(1, 99); got != len(src) {
		t.Errorf("UTF16ToOffset(1,99) = %d, want %d", got, len(src))
	}
	if got := ix.UTF16ToOffset(99, 0); got != len(src) {
		t.Errorf("UTF16ToOffset(99,0) = %d, want %d", got, len(src))
	}
	if got := ix.UTF16ToOffset(-1, 0); got != 0 {
		t.Errorf("UTF16ToOffset(-1,0) = %d, want 0", got)
	}
}

// TestRoundTrip: for every rune boundary in a torture document, offset
// -> (line, char) -> offset is the identity, and the UTF-16 column
// agrees with the encoding the utf16 package produces.
func TestRoundTrip(t *testing.T) {
	src := "plain\r\nmixé😀\xff tail\rlast😀line\nok"
	ix := New(src)
	for off := 0; off <= len(src); {
		line, char := ix.OffsetToUTF16(off)
		if back := ix.UTF16ToOffset(line, char); back != off {
			t.Errorf("offset %d -> (%d,%d) -> %d", off, line, char, back)
		}
		// Independent check of the column against utf16.Encode over
		// the decoded line prefix (replacement chars for bad bytes).
		prefix := src[ix.LineStart(line):off]
		units := 0
		for _, r := range prefix {
			units += len(utf16.Encode([]rune{r}))
		}
		if !strings.ContainsRune(prefix, '�') && units != char {
			t.Errorf("offset %d: char = %d, utf16 says %d", off, char, units)
		}
		// Advance one rune (or one invalid byte); a "\r\n" pair is
		// skipped whole — an offset strictly inside a separator has no
		// identity round-trip (it clamps to the line's content end).
		if off == len(src) {
			break
		}
		if src[off] == '\r' && off+1 < len(src) && src[off+1] == '\n' {
			off += 2
			continue
		}
		_, size := decodeAt(src, off)
		off += size
	}
}

func decodeAt(s string, i int) (rune, int) {
	r := rune(s[i])
	if r < 0x80 {
		return r, 1
	}
	for size := 2; size <= 4 && i+size <= len(s); size++ {
		if rr := []rune(s[i : i+size]); len(rr) == 1 && rr[0] != '�' {
			return rr[0], size
		}
	}
	return '�', 1
}
