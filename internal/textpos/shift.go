package textpos

import (
	"sort"
	"strings"
)

// NewLF builds an index where only '\n' ends a line — the tokenizer's
// line semantics (htmltoken counts lines by bare newlines; "\r\n" is
// one separator only because it contains one '\n'). The incremental
// lint Session uses LF indexes so its line arithmetic agrees exactly
// with the line numbers the checker emits.
func NewLF(src string) *Index {
	starts := []int{0}
	for i := 0; i < len(src); {
		j := strings.IndexByte(src[i:], '\n')
		if j < 0 {
			break
		}
		i += j + 1
		starts = append(starts, i)
	}
	return &Index{src: src, starts: starts}
}

// SpliceLF derives the LF index of the edited document — old's source
// with bytes [start, end) replaced by replacement, yielding newSrc —
// from the old index, scanning only the replacement bytes. It returns
// exactly what NewLF(newSrc) would: line starts at or before the edit
// are unchanged, starts opened by deleted newlines vanish, starts in
// the replacement are found by scanning it, and starts after the edit
// shift by the length delta. On the incremental re-lint path this
// turns the per-edit index rebuild from a whole-document scan into
// O(len(replacement) + suffix lines).
func SpliceLF(old *Index, start, end int, replacement, newSrc string) *Index {
	delta := len(replacement) - (end - start)
	// starts[:p] are <= start: their newlines sit strictly before the
	// edit. starts[q:] are > end: their newlines sit at or after it.
	p := sort.SearchInts(old.starts, start+1)
	q := sort.SearchInts(old.starts, end+1)
	starts := make([]int, 0, p+strings.Count(replacement, "\n")+len(old.starts)-q)
	starts = append(starts, old.starts[:p]...)
	for i := 0; i < len(replacement); {
		j := strings.IndexByte(replacement[i:], '\n')
		if j < 0 {
			break
		}
		i += j + 1
		starts = append(starts, start+i)
	}
	for _, s := range old.starts[q:] {
		starts = append(starts, s+delta)
	}
	return &Index{src: newSrc, starts: starts}
}

// LineStarts exposes the index's line-start table (offset of each
// line's first byte, starts[0] == 0). Callers must treat it as
// read-only; it is the tokenizer hand-off that lets an incremental
// re-lint re-arm over a large document without rescanning it.
func (ix *Index) LineStarts() []int { return ix.starts }

// Shift maps positions in a document across one span edit: the old
// document's bytes [P, Q) were replaced, changing the length by Delta
// bytes and the line count by LineDelta. It is the single-valued
// mapping the incremental re-lint uses both to compare checkpointed
// checker state against a live re-lint (old-document positions against
// new-document positions) and to splice cached findings across the
// edit. Mappings that cannot be decided from the value alone — a
// position inside the replaced span, or a line the edit boundary makes
// ambiguous — report ok=false; callers treat that as "cannot splice
// here" and fall back to linting further.
//
// Lines are 1-based and follow LF-only semantics (NewLF), matching the
// tokenizer.
type Shift struct {
	// P, Q delimit the replaced span [P, Q) in the old document.
	P, Q int
	// Delta is len(new) - len(old).
	Delta int
	// LpB, LqB are the 1-based lines containing P and Q in the old
	// document; LineDelta is the change in total line count.
	LpB, LqB  int
	LineDelta int
	// QAtLineStart records whether Q sits exactly at a line start,
	// which makes every old position on line LqB unambiguously part of
	// the suffix.
	QAtLineStart bool
	// Old and New are LF indexes of the old and new documents.
	Old, New *Index
}

// NewShift describes replacing old[start:end] with replacement, where
// oldIx and newIx are LF indexes of the documents before and after.
func NewShift(oldIx, newIx *Index, start, end int, replacement string) *Shift {
	return &Shift{
		P:     start,
		Q:     end,
		Delta: len(replacement) - (end - start),
		LpB:   oldIx.OffsetLine(start) + 1,
		LqB:   oldIx.OffsetLine(end) + 1,
		LineDelta: strings.Count(replacement, "\n") -
			strings.Count(oldIx.src[start:end], "\n"),
		QAtLineStart: end == 0 || oldIx.src[end-1] == '\n',
		Old:          oldIx,
		New:          newIx,
	}
}

// Off maps an old-document byte offset. Offsets before the edit are
// unchanged, offsets at or after its end shift by Delta; an offset
// inside the replaced span is undecidable unless the edit preserved
// length (then every offset maps to itself).
func (s *Shift) Off(o int) (int, bool) {
	switch {
	case s.Delta == 0:
		return o, true
	case o < s.P:
		return o, true
	case o >= s.Q:
		return o + s.Delta, true
	}
	return 0, false
}

// Line maps an old-document 1-based line number (without knowing the
// column). Lines strictly before the edit are unchanged and lines
// strictly after it shift by LineDelta. The edit's own lines are
// undecidable from the line number alone, except when the line count
// did not change (identity) or when Q sits at a line start (every
// position on line LqB is then in the suffix).
func (s *Shift) Line(l int) (int, bool) {
	switch {
	case s.LineDelta == 0:
		return l, true
	case l < s.LpB:
		return l, true
	case l > s.LqB:
		return l + s.LineDelta, true
	case l == s.LqB && s.QAtLineStart:
		return l + s.LineDelta, true
	}
	return 0, false
}

// Pos maps a (1-based line, 1-based byte column) position exactly, by
// reconstructing the byte offset through the old index and re-deriving
// line/column through the new one. Col <= 0 means "column unknown"
// (the emitter's convention) and falls back to Line. Positions inside
// the replaced span are undecidable unless the edit changed neither
// length nor line count.
func (s *Shift) Pos(line, col int) (newLine, newCol int, ok bool) {
	if col <= 0 {
		nl, lok := s.Line(line)
		return nl, col, lok
	}
	off := s.Old.LineStart(line-1) + col - 1
	switch {
	case off < s.P:
		return line, col, true
	case off >= s.Q:
		noff := off + s.Delta
		nline := s.New.OffsetLine(noff)
		return nline + 1, noff - s.New.LineStart(nline) + 1, true
	case s.Delta == 0 && s.LineDelta == 0:
		return line, col, true
	}
	return 0, 0, false
}
