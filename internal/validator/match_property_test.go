package validator

import (
	"math/rand"
	"testing"

	"weblint/internal/dtd"
)

// generateValid walks a content model making random choices, emitting
// a sequence the model must accept. depth bounds recursion.
func generateValid(m *dtd.Model, rnd *rand.Rand, out *[]string, depth int) {
	if depth > 6 {
		return
	}
	reps := 1
	switch m.Occur {
	case dtd.Opt:
		reps = rnd.Intn(2)
	case dtd.Star:
		reps = rnd.Intn(3)
	case dtd.Plus:
		reps = 1 + rnd.Intn(2)
	}
	for r := 0; r < reps; r++ {
		switch m.Kind {
		case dtd.MName:
			*out = append(*out, m.Name)
		case dtd.MPCData:
			*out = append(*out, "#pcdata")
		case dtd.MSeq:
			for _, c := range m.Children {
				generateValid(c, rnd, out, depth+1)
			}
		case dtd.MChoice:
			generateValid(m.Children[rnd.Intn(len(m.Children))], rnd, out, depth+1)
		case dtd.MAll:
			// All operands, in a random order.
			perm := rnd.Perm(len(m.Children))
			for _, i := range perm {
				generateValid(m.Children[i], rnd, out, depth+1)
			}
		}
	}
}

// TestMatchModelAcceptsGeneratedSequences: every sequence produced by
// walking a model must be accepted by the matcher — across all content
// models of the embedded HTML 4.0 DTD, with many random walks each.
func TestMatchModelAcceptsGeneratedSequences(t *testing.T) {
	d := dtd.HTML40()
	rnd := rand.New(rand.NewSource(1))
	for _, name := range d.ElementNames() {
		decl := d.Element(name)
		if decl.Content != dtd.ContentModel || decl.Model == nil {
			continue
		}
		for trial := 0; trial < 25; trial++ {
			var seq []string
			generateValid(decl.Model, rnd, &seq, 0)
			if !MatchModel(decl.Model, seq) {
				t.Fatalf("%s: matcher rejected generated-valid %v against %s",
					name, seq, decl.Model)
			}
		}
	}
}

// TestMatchModelRejectsForeignElements: appending an element that
// appears nowhere in the model must always be rejected.
func TestMatchModelRejectsForeignElements(t *testing.T) {
	d := dtd.HTML40()
	rnd := rand.New(rand.NewSource(2))
	for _, name := range []string{"table", "ul", "dl", "select", "html", "tr"} {
		decl := d.Element(name)
		for trial := 0; trial < 10; trial++ {
			var seq []string
			generateValid(decl.Model, rnd, &seq, 0)
			seq = append(seq, "zz-not-an-element")
			if MatchModel(decl.Model, seq) {
				t.Fatalf("%s: matcher accepted foreign element in %v", name, seq)
			}
		}
	}
}

// TestMatchModelEmptyVsRequired: models with a required component must
// reject the empty sequence; purely optional models must accept it.
func TestMatchModelEmptyVsRequired(t *testing.T) {
	d := dtd.HTML40()
	mustReject := []string{"table", "ul", "ol", "dl", "select", "html"}
	for _, name := range mustReject {
		if MatchModel(d.Element(name).Model, nil) {
			t.Errorf("%s accepts empty content but has required children", name)
		}
	}
	mustAccept := []string{"p", "td", "body", "div"}
	for _, name := range mustAccept {
		if !MatchModel(d.Element(name).Model, nil) {
			t.Errorf("%s rejects empty content but is (...)* style", name)
		}
	}
}
