package validator

import (
	"strings"
	"testing"

	"weblint/internal/core"
	"weblint/internal/corpus"
	"weblint/internal/dtd"
	"weblint/internal/warn"
)

func validDoc(body string) string {
	return "<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY>" + body + "</BODY></HTML>"
}

func texts(msgs []Message) []string {
	out := make([]string, len(msgs))
	for i, m := range msgs {
		out[i] = m.Text
	}
	return out
}

func requireText(t *testing.T, msgs []Message, substr string) {
	t.Helper()
	for _, m := range msgs {
		if strings.Contains(m.Text, substr) {
			return
		}
	}
	t.Fatalf("no message containing %q; got %v", substr, texts(msgs))
}

func TestValidDocumentPasses(t *testing.T) {
	src := validDoc(`<H1>Title</H1><P>Text with <EM>emphasis</EM> and <A HREF="x.html">a link</A>.</P>` +
		`<UL><LI>one</LI><LI>two</LI></UL>`)
	msgs := Validate("v.html", src)
	if len(msgs) != 0 {
		t.Fatalf("valid document rejected: %v", texts(msgs))
	}
}

func TestOmittedTagsAreLegal(t *testing.T) {
	src := `<HTML><HEAD><TITLE>t</TITLE><BODY><P>one<P>two` +
		`<UL><LI>a<LI>b</UL><TABLE><TR><TD>x<TD>y<TR><TD>z<TD>w</TABLE></BODY></HTML>`
	msgs := Validate("v.html", src)
	if len(msgs) != 0 {
		t.Fatalf("legal omission rejected: %v", texts(msgs))
	}
}

func TestUndefinedElement(t *testing.T) {
	msgs := Validate("v.html", validDoc("<BLOCKQOUTE>x</BLOCKQOUTE>"))
	requireText(t, msgs, `element "BLOCKQOUTE" undefined`)
	// And the cascade: the close tag errors separately, unlike
	// weblint.
	requireText(t, msgs, `end tag for element "BLOCKQOUTE" which is not open`)
}

func TestElementNotAllowedHere(t *testing.T) {
	// LI directly in BODY.
	msgs := Validate("v.html", validDoc("<LI>loose"))
	requireText(t, msgs, `document type does not allow element "LI" here`)
}

func TestHeadElementInBody(t *testing.T) {
	msgs := Validate("v.html", validDoc(`<BASE HREF="http://x/">`))
	requireText(t, msgs, `document type does not allow element "BASE" here`)
}

func TestExclusionEnforced(t *testing.T) {
	// A may not nest inside A (the -(A) exception).
	msgs := Validate("v.html", validDoc(`<A HREF="a"><A HREF="b">x</A></A>`))
	requireText(t, msgs, `document type does not allow element "A" here`)
}

func TestInclusionAccepted(t *testing.T) {
	// SCRIPT in HEAD is admitted via the +(%head.misc;) inclusion.
	src := `<HTML><HEAD><TITLE>t</TITLE><SCRIPT TYPE="text/javascript">x()</SCRIPT></HEAD><BODY><P>x</P></BODY></HTML>`
	msgs := Validate("v.html", src)
	if len(msgs) != 0 {
		t.Fatalf("inclusion rejected: %v", texts(msgs))
	}
}

func TestMissingRequiredEndTag(t *testing.T) {
	msgs := Validate("v.html", validDoc("<EM>never closed"))
	requireText(t, msgs, `end tag for "EM" omitted`)
}

func TestEndTagNotOpen(t *testing.T) {
	msgs := Validate("v.html", validDoc("x</STRONG>y"))
	requireText(t, msgs, `end tag for element "STRONG" which is not open`)
}

func TestCharacterDataNotAllowed(t *testing.T) {
	msgs := Validate("v.html", validDoc("<UL>loose text<LI>item</UL>"))
	requireText(t, msgs, "character data is not allowed here")
}

func TestContentModelViolation(t *testing.T) {
	// TABLE requires TBODY+ (i.e. at least one row); an empty TABLE
	// violates the model.
	msgs := Validate("v.html", validDoc("<TABLE></TABLE>"))
	requireText(t, msgs, `content of element "TABLE" does not match`)
}

func TestRequiredAttributeMissing(t *testing.T) {
	msgs := Validate("v.html", validDoc(`<IMG SRC="x.gif">`))
	requireText(t, msgs, `required attribute "ALT" not specified`)
}

func TestUndeclaredAttribute(t *testing.T) {
	msgs := Validate("v.html", validDoc(`<P BOGUS="1">x</P>`))
	requireText(t, msgs, `there is no attribute "BOGUS"`)
}

func TestEnumAttributeValue(t *testing.T) {
	msgs := Validate("v.html", validDoc(`<P ALIGN="middle">x</P>`))
	requireText(t, msgs, `cannot be "middle"`)
	if len(Validate("v.html", validDoc(`<P ALIGN="center">x</P>`))) != 0 {
		t.Error("legal enum value rejected")
	}
}

func TestNumberAttributeValue(t *testing.T) {
	msgs := Validate("v.html", validDoc(`<TEXTAREA ROWS="many" COLS="5">x</TEXTAREA>`))
	requireText(t, msgs, "is not a number")
}

func TestDuplicateAttribute(t *testing.T) {
	msgs := Validate("v.html", validDoc(`<P ALIGN="left" ALIGN="right">x</P>`))
	requireText(t, msgs, "duplicate specification")
}

func TestUnclosedAtEOF(t *testing.T) {
	msgs := Validate("v.html", "<HTML><HEAD><TITLE>t</TITLE></HEAD><BODY><EM>x")
	requireText(t, msgs, "omitted at end of document")
}

func TestMessageString(t *testing.T) {
	m := Message{File: "f.html", Line: 3, Text: "boom"}
	if m.String() != "f.html:3:E: boom" {
		t.Errorf("String() = %q", m.String())
	}
}

func TestMatchModelSequence(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT X - - (A, B?, C+)>`)
	m := d.Element("x").Model
	good := [][]string{
		{"a", "c"},
		{"a", "b", "c"},
		{"a", "c", "c", "c"},
	}
	bad := [][]string{
		{},
		{"a"},
		{"a", "b"},
		{"b", "c"},
		{"a", "b", "b", "c"},
		{"a", "c", "b"},
	}
	for _, seq := range good {
		if !MatchModel(m, seq) {
			t.Errorf("MatchModel rejected %v", seq)
		}
	}
	for _, seq := range bad {
		if MatchModel(m, seq) {
			t.Errorf("MatchModel accepted %v", seq)
		}
	}
}

func TestMatchModelChoiceStar(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT X - - (A|B)*>`)
	m := d.Element("x").Model
	for _, seq := range [][]string{{}, {"a"}, {"b", "a", "b"}} {
		if !MatchModel(m, seq) {
			t.Errorf("rejected %v", seq)
		}
	}
	if MatchModel(m, []string{"c"}) {
		t.Error("accepted foreign element")
	}
}

func TestMatchModelAllConnector(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT X - - (A & B? & C)>`)
	m := d.Element("x").Model
	good := [][]string{
		{"a", "c"}, {"c", "a"}, {"a", "b", "c"}, {"b", "c", "a"},
	}
	bad := [][]string{
		{"a"}, {"a", "a", "c"}, {"a", "b", "b", "c"}, {},
	}
	for _, seq := range good {
		if !MatchModel(m, seq) {
			t.Errorf("rejected %v", seq)
		}
	}
	for _, seq := range bad {
		if MatchModel(m, seq) {
			t.Errorf("accepted %v", seq)
		}
	}
}

func TestMatchModelPCData(t *testing.T) {
	d := dtd.MustParse(`<!ELEMENT X - - (#PCDATA | A)*>`)
	m := d.Element("x").Model
	if !MatchModel(m, []string{"#pcdata", "a", "#pcdata"}) {
		t.Error("mixed content rejected")
	}
}

// TestE6StrictComparison is experiment E6: the strict validator and
// weblint over the same defective corpus. The validator must produce
// (a) more messages (cascades) and (b) SGML-flavoured wording, which
// is the paper's Sections 2-3 contrast.
func TestE6StrictComparison(t *testing.T) {
	var strictTotal, lintTotal int
	for seed := int64(0); seed < 10; seed++ {
		src := corpus.Generate(corpus.Config{
			Seed: seed, Sections: 4,
			Errors: corpus.ErrorRates{Misspell: 0.5, Overlap: 0.4, DropClose: 0.3},
		})
		strictTotal += len(Validate("g.html", src))
		em := warn.NewEmitter(nil)
		core.Check(src, em, core.Options{Filename: "g.html"})
		lintTotal += len(em.Messages())
	}
	if lintTotal == 0 || strictTotal == 0 {
		t.Fatalf("degenerate experiment: strict=%d lint=%d", strictTotal, lintTotal)
	}
	if strictTotal <= lintTotal {
		t.Errorf("strict validator (%d) should out-message weblint (%d) on broken input",
			strictTotal, lintTotal)
	}
	t.Logf("E6: strict validator %d messages vs weblint %d (%.2fx) on the same corpus",
		strictTotal, lintTotal, float64(strictTotal)/float64(lintTotal))
}

// TestValidCorpusPassesStrict ties the generator to the DTD: with no
// error injection the generated documents are strictly valid.
func TestValidCorpusPassesStrict(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		src := corpus.Generate(corpus.Config{Seed: seed, Sections: 3})
		msgs := Validate("g.html", src)
		if len(msgs) != 0 {
			t.Fatalf("seed %d: valid corpus rejected by strict validator: %v",
				seed, texts(msgs)[:min(3, len(msgs))])
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
