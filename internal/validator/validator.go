// Package validator implements a strict, DTD-driven HTML validator:
// the class of tool weblint is contrasted with in the paper's Sections
// 2 and 3. Strict validators "have the obvious advantage that you are
// checking against the bible (the DTD); on the down-side, the warning
// and error messages are usually straight from the parser, and require
// a grounding in SGML to understand".
//
// The validator checks a token stream against a dtd.DTD: element
// declarations, content models (with inclusion/exclusion exceptions),
// tag omission rules, and attribute declarations. It deliberately has
// no cascade suppression — every deviation is reported in SGML-parser
// wording — which is exactly the behaviour the E6 experiment measures
// weblint's heuristics against.
package validator

import (
	"fmt"
	"sort"
	"strings"

	"weblint/internal/dtd"
	"weblint/internal/htmltoken"
)

// Message is one validation error, in SGML-parser style.
type Message struct {
	// File and Line position the error.
	File string
	Line int
	// Text is the error text.
	Text string
}

// String renders the message in nsgmls-like "file:line:E: text" form.
func (m Message) String() string {
	return fmt.Sprintf("%s:%d:E: %s", m.File, m.Line, m.Text)
}

// openElem is one entry on the validator's parse stack.
type openElem struct {
	name     string
	decl     *dtd.ElementDecl
	line     int
	children []string // child sequence for content-model matching
}

// Validator validates documents against a DTD. Construct with New.
type Validator struct {
	dtd  *dtd.DTD
	file string

	stack []openElem
	msgs  []Message
}

// New returns a Validator for the given DTD. A nil DTD means the
// embedded HTML 4.0 transitional subset.
func New(d *dtd.DTD) *Validator {
	if d == nil {
		d = dtd.HTML40()
	}
	return &Validator{dtd: d}
}

// Validate checks src and returns all errors found.
func (v *Validator) Validate(file, src string) []Message {
	v.file = file
	v.stack = nil
	v.msgs = nil

	for _, tok := range htmltoken.Tokenize(src) {
		v.token(tok)
	}
	v.finish()
	return v.msgs
}

// Validate is a convenience wrapper using the embedded HTML 4.0 DTD.
func Validate(file, src string) []Message {
	return New(nil).Validate(file, src)
}

func (v *Validator) errorf(line int, format string, args ...any) {
	v.msgs = append(v.msgs, Message{File: v.file, Line: line, Text: fmt.Sprintf(format, args...)})
}

func (v *Validator) token(tok htmltoken.Token) {
	switch tok.Type {
	case htmltoken.StartTag:
		if tok.EmptyTag || tok.Unterminated {
			v.errorf(tok.Line, "character \"<\" is the first character of a delimiter but occurred as data")
			return
		}
		v.startTag(tok)
	case htmltoken.EndTag:
		if tok.Unterminated {
			return
		}
		v.endTag(tok)
	case htmltoken.Text:
		if tok.RawText || strings.TrimSpace(tok.Text) == "" {
			return
		}
		v.textContent(tok)
	case htmltoken.Comment, htmltoken.Doctype, htmltoken.Declaration, htmltoken.ProcInst:
		// Not subject to content models in this subset.
	}
}

// startTag validates one opening tag against the DTD.
func (v *Validator) startTag(tok htmltoken.Token) {
	name := strings.ToLower(tok.Name)
	display := strings.ToUpper(tok.Name)
	decl := v.dtd.Element(name)
	if decl == nil {
		v.errorf(tok.Line, "element %q undefined", display)
		return // not pushed: the close tag will also error (cascade)
	}

	v.placeElement(name, display, tok.Line)
	v.checkAttrs(tok, decl, display)

	if decl.Content == dtd.ContentEmpty {
		return // EMPTY elements are not pushed
	}
	v.stack = append(v.stack, openElem{name: name, decl: decl, line: tok.Line})
}

// placeElement checks that name is allowed by the current element's
// content model (or exceptions), applying legal implied end tags and
// omitted start tags (SGML 'O' flags) along the way, and records the
// child on its parent.
func (v *Validator) placeElement(name, display string, line int) {
	inferences := 0
	for {
		if len(v.stack) == 0 {
			return // document element level: accept
		}
		top := &v.stack[len(v.stack)-1]
		if v.excluded(name) {
			v.errorf(line, "document type does not allow element %q here", display)
			top.children = append(top.children, name)
			return
		}
		if v.included(name) {
			// Admitted via an inclusion exception: inclusions do
			// not participate in the content model.
			return
		}
		if top.decl.Content == dtd.ContentAny || v.allowedInModel(top.decl, name) {
			top.children = append(top.children, name)
			return
		}
		// Omitted start tags: <TABLE><TR> implies <TBODY> because
		// TBODY is declared with an omissible start tag, is allowed
		// in TABLE, and allows TR.
		if inferences < 4 {
			if mid := v.inferOpen(top.decl, name); mid != nil {
				top.children = append(top.children, mid.Name)
				v.stack = append(v.stack, openElem{name: mid.Name, decl: mid, line: line})
				inferences++
				continue
			}
		}
		// Not allowed: if the open element's end tag is omissible
		// and some ancestor allows the new element, imply the end.
		if top.decl.OmitEnd && v.ancestorAllows(name) {
			v.popTop()
			continue
		}
		v.errorf(line, "document type does not allow element %q here", display)
		top.children = append(top.children, name)
		return
	}
}

// inferOpen finds an element with an omissible start tag which is
// allowed in parent's content and itself allows name. Candidates are
// scanned in sorted order for determinism.
func (v *Validator) inferOpen(parent *dtd.ElementDecl, name string) *dtd.ElementDecl {
	if parent.Content != dtd.ContentModel || parent.Model == nil {
		return nil
	}
	names := parent.Model.Names()
	candidates := make([]string, 0, len(names))
	for c := range names {
		candidates = append(candidates, c)
	}
	sort.Strings(candidates)
	for _, candidate := range candidates {
		decl := v.dtd.Elements[candidate]
		if decl == nil || !decl.OmitStart || candidate == name {
			continue
		}
		if decl.Content == dtd.ContentModel && v.allowedInModel(decl, name) {
			return decl
		}
	}
	return nil
}

// allowedInModel reports whether name appears anywhere in the
// element's content model.
func (v *Validator) allowedInModel(decl *dtd.ElementDecl, name string) bool {
	if decl.Content != dtd.ContentModel || decl.Model == nil {
		return false
	}
	return decl.Model.Names()[name]
}

// excluded reports whether name is excluded by any open element's
// exclusion exceptions.
func (v *Validator) excluded(name string) bool {
	for i := range v.stack {
		for _, x := range v.stack[i].decl.Exclusions {
			if x == name {
				return true
			}
		}
	}
	return false
}

// included reports whether name is admitted by any open element's
// inclusion exceptions.
func (v *Validator) included(name string) bool {
	for i := range v.stack {
		for _, x := range v.stack[i].decl.Inclusions {
			if x == name {
				return true
			}
		}
	}
	return false
}

// ancestorAllows reports whether any element below the top of the
// stack could accept name, considering omissible end tags above it.
func (v *Validator) ancestorAllows(name string) bool {
	for i := len(v.stack) - 2; i >= 0; i-- {
		e := &v.stack[i]
		if e.decl.Content == dtd.ContentAny || v.allowedInModel(e.decl, name) {
			return true
		}
		if !e.decl.OmitEnd {
			return false
		}
	}
	return false
}

// textContent validates character data placement.
func (v *Validator) textContent(tok htmltoken.Token) {
	if len(v.stack) == 0 {
		v.errorf(tok.Line, "character data is not allowed here")
		return
	}
	top := &v.stack[len(v.stack)-1]
	switch top.decl.Content {
	case dtd.ContentAny, dtd.ContentCDATA:
		return
	case dtd.ContentEmpty:
		v.errorf(tok.Line, "character data is not allowed here")
		return
	}
	if top.decl.Model != nil && modelAllowsPCData(top.decl.Model) {
		top.children = append(top.children, "#pcdata")
		return
	}
	v.errorf(tok.Line, "character data is not allowed here")
}

func modelAllowsPCData(m *dtd.Model) bool {
	if m.Kind == dtd.MPCData {
		return true
	}
	for _, c := range m.Children {
		if modelAllowsPCData(c) {
			return true
		}
	}
	return false
}

// endTag validates a closing tag: omitted end tags for intervening
// elements are individually reported (no cascade suppression — this is
// the strict behaviour weblint's heuristics are measured against).
func (v *Validator) endTag(tok htmltoken.Token) {
	name := strings.ToLower(tok.Name)
	display := strings.ToUpper(tok.Name)

	idx := -1
	for i := len(v.stack) - 1; i >= 0; i-- {
		if v.stack[i].name == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		v.errorf(tok.Line, "end tag for element %q which is not open", display)
		return
	}
	for len(v.stack) > idx+1 {
		top := v.stack[len(v.stack)-1]
		if !top.decl.OmitEnd {
			v.errorf(tok.Line,
				"end tag for %q omitted, but its declaration does not permit this; start tag was on line %d",
				strings.ToUpper(top.name), top.line)
		}
		v.popTop()
	}
	v.popTop()
}

// popTop pops the stack, running the content model check for the
// departing element.
func (v *Validator) popTop() {
	top := v.stack[len(v.stack)-1]
	v.stack = v.stack[:len(v.stack)-1]
	v.checkModel(top)
}

// checkModel verifies the completed child sequence of an element
// against its declared content model.
func (v *Validator) checkModel(e openElem) {

	if e.decl.Content != dtd.ContentModel || e.decl.Model == nil {
		return
	}
	if !MatchModel(e.decl.Model, e.children) {
		v.errorf(e.line, "content of element %q does not match its declared content model",
			strings.ToUpper(e.name))
	}
}

// checkAttrs validates a tag's attributes against the ATTLIST.
func (v *Validator) checkAttrs(tok htmltoken.Token, decl *dtd.ElementDecl, display string) {
	seen := map[string]bool{}
	for _, at := range tok.Attrs {
		lower := strings.ToLower(at.Name)
		if seen[lower] {
			v.errorf(at.Line, "duplicate specification of attribute %q", strings.ToUpper(at.Name))
			continue
		}
		seen[lower] = true
		ad, ok := decl.Attrs[lower]
		if !ok {
			v.errorf(at.Line, "there is no attribute %q", strings.ToUpper(at.Name))
			continue
		}
		if !at.HasValue {
			continue // SGML minimized attribute; accepted
		}
		switch {
		case ad.Type == "enum":
			ok := false
			for _, val := range ad.Enum {
				if strings.EqualFold(val, at.Value) {
					ok = true
					break
				}
			}
			if !ok {
				v.errorf(at.Line, "value %q of attribute %q cannot be %q; must be one of %s",
					at.Value, strings.ToUpper(at.Name), at.Value, quoteList(ad.Enum))
			}
		case ad.Type == "NUMBER":
			for i := 0; i < len(at.Value); i++ {
				if at.Value[i] < '0' || at.Value[i] > '9' {
					v.errorf(at.Line, "value %q of attribute %q is not a number", at.Value, strings.ToUpper(at.Name))
					break
				}
			}
		}
	}
	for _, req := range decl.RequiredAttrs() {
		if !seen[req] {
			v.errorf(tok.Line, "required attribute %q not specified", strings.ToUpper(req))
		}
	}
}

// finish reports elements left open at end of document.
func (v *Validator) finish() {
	for len(v.stack) > 0 {
		top := v.stack[len(v.stack)-1]
		if !top.decl.OmitEnd {
			v.errorf(top.line,
				"end tag for %q omitted at end of document, but its declaration does not permit this",
				strings.ToUpper(top.name))
		}
		v.popTop()
	}
}

func quoteList(vals []string) string {
	out := make([]string, len(vals))
	for i, s := range vals {
		out[i] = fmt.Sprintf("%q", strings.ToUpper(s))
	}
	return strings.Join(out, ", ")
}
