package validator

import "weblint/internal/dtd"

// MatchModel reports whether a child sequence satisfies a content
// model. Children are lower-case element names, with "#pcdata"
// standing for character data runs.
//
// The matcher walks the model expression tree computing, for each
// subexpression, the set of sequence positions reachable after
// consuming it; occurrence indicators iterate that set to a fixed
// point. Sequences in checked documents are short, so the position-set
// approach is comfortably fast and handles the SGML '&' connector
// (match all operands, any order) by recursive elimination.
func MatchModel(m *dtd.Model, children []string) bool {
	ends := advance(m, children, map[int]bool{0: true})
	return ends[len(children)]
}

// advance returns the set of positions reachable by matching m
// starting from every position in the from set.
func advance(m *dtd.Model, seq []string, from map[int]bool) map[int]bool {
	out := map[int]bool{}
	for pos := range from {
		for end := range advanceOnce(m, seq, pos) {
			out[end] = true
		}
	}
	// Occurrence indicators.
	switch m.Occur {
	case dtd.Opt:
		for pos := range from {
			out[pos] = true
		}
	case dtd.Star, dtd.Plus:
		// Iterate to a fixed point.
		frontier := copySet(out)
		if m.Occur == dtd.Star {
			for pos := range from {
				out[pos] = true
			}
		}
		for len(frontier) > 0 {
			next := map[int]bool{}
			for pos := range frontier {
				for end := range advanceOnce(m, seq, pos) {
					if !out[end] {
						out[end] = true
						next[end] = true
					}
				}
			}
			frontier = next
		}
	}
	return out
}

// advanceOnce matches exactly one occurrence of m (ignoring its own
// occurrence indicator) starting at pos.
func advanceOnce(m *dtd.Model, seq []string, pos int) map[int]bool {
	switch m.Kind {
	case dtd.MName:
		if pos < len(seq) && seq[pos] == m.Name {
			return map[int]bool{pos + 1: true}
		}
		return nil
	case dtd.MPCData:
		if pos < len(seq) && seq[pos] == "#pcdata" {
			return map[int]bool{pos + 1: true}
		}
		return nil
	case dtd.MSeq:
		cur := map[int]bool{pos: true}
		for _, c := range m.Children {
			cur = advance(c, seq, cur)
			if len(cur) == 0 {
				return nil
			}
		}
		return cur
	case dtd.MChoice:
		out := map[int]bool{}
		for _, c := range m.Children {
			for end := range advance(c, seq, map[int]bool{pos: true}) {
				out[end] = true
			}
		}
		return out
	case dtd.MAll:
		return matchAll(m.Children, seq, pos)
	}
	return nil
}

// matchAll handles the SGML '&' connector: every operand must match
// exactly once (subject to its own occurrence indicator), in any
// order. It recursively tries each remaining operand at the current
// position.
func matchAll(operands []*dtd.Model, seq []string, pos int) map[int]bool {
	if len(operands) == 0 {
		return map[int]bool{pos: true}
	}
	out := map[int]bool{}
	for i, op := range operands {
		rest := make([]*dtd.Model, 0, len(operands)-1)
		rest = append(rest, operands[:i]...)
		rest = append(rest, operands[i+1:]...)
		for mid := range advance(op, seq, map[int]bool{pos: true}) {
			for end := range matchAll(rest, seq, mid) {
				out[end] = true
			}
		}
	}
	return out
}

func copySet(s map[int]bool) map[int]bool {
	out := make(map[int]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}
