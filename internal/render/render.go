// Package render provides the pluggable diagnostics renderers of the
// streaming pipeline: every renderer is a warn.Sink that writes one
// representation of the message stream to an io.Writer.
//
// Four renderers wrap the traditional human formatters (lint, short,
// terse, verbose); two emit machine-readable output for CI and editor
// tooling: "json" writes one JSON object per message (JSON Lines), and
// "sarif" writes a SARIF 2.1.0 log, the interchange format GitHub code
// scanning and most editor problem-matchers consume.
//
// Renderers are streaming where the format allows it: the line-based
// renderers (including json) write each message as it arrives and
// buffer nothing. SARIF is a single JSON document, so that renderer
// accumulates results and writes the log at Close. Either way the
// producer drives them identically: Write each message, then Close
// exactly once.
package render

import (
	"encoding/json"
	"fmt"
	"io"
	"slices"
	"sort"

	"weblint/internal/warn"
)

// Renderer consumes a stream of diagnostics and renders it to the
// writer it was constructed over. Close must be called once after the
// last Write; document formats (SARIF) write their output there, and
// every renderer reports its first write error there.
type Renderer interface {
	warn.Sink
	// Close finishes the rendering and returns the first error
	// encountered, if any.
	Close() error
}

// Styles returns the recognised renderer names, in menu order.
func Styles() []string {
	return []string{"lint", "short", "terse", "verbose", "json", "sarif"}
}

// Valid reports whether style names a renderer.
func Valid(style string) bool {
	return slices.Contains(Styles(), style)
}

// New returns a renderer writing the named style to w. The recognised
// styles are those of Styles; anything else is an error naming the
// style.
func New(style string, w io.Writer) (Renderer, error) {
	switch style {
	case "lint":
		return NewFormatter(warn.Lint{}, w), nil
	case "short":
		return NewFormatter(warn.Short{}, w), nil
	case "terse":
		return NewFormatter(warn.Terse{}, w), nil
	case "verbose":
		return NewFormatter(warn.Verbose{}, w), nil
	case "json":
		return NewJSON(w), nil
	case "sarif":
		return NewSARIF(w), nil
	}
	return nil, fmt.Errorf("render: unknown output format %q", style)
}

// formatterRenderer wraps a warn.Formatter as a streaming Renderer.
type formatterRenderer struct {
	*warn.WriterSink
}

// NewFormatter returns a streaming renderer writing each message
// through f, one line at a time. It is how the traditional human
// formatters — and any user-supplied warn.Formatter, such as the
// gateway's HTML formatter — plug into the sink pipeline.
func NewFormatter(f warn.Formatter, w io.Writer) Renderer {
	return formatterRenderer{warn.NewWriterSink(f, w)}
}

// Close reports the first write error; line renderers have nothing to
// flush.
func (r formatterRenderer) Close() error { return r.Err() }

// jsonMessage is the JSON Lines shape of one diagnostic. The field
// order is fixed, so output is byte-stable for a given stream. Fixes,
// when the checker attached one, appear as a "fixes" array of
// {label, edits:[{start,end,text}]} objects with byte offsets into
// the checked document.
type jsonMessage struct {
	ID       string      `json:"id"`
	Category string      `json:"category"`
	File     string      `json:"file"`
	Line     int         `json:"line"`
	Col      int         `json:"col"`
	Text     string      `json:"text"`
	Fixes    []*warn.Fix `json:"fixes,omitempty"`
}

// jsonFixes wraps a message's optional fix as the "fixes" array.
func jsonFixes(m warn.Message) []*warn.Fix {
	if m.Fix == nil {
		return nil
	}
	return []*warn.Fix{m.Fix}
}

// jsonRenderer streams one JSON object per message and counts the
// stream into its own Summary for the trailing summary line.
type jsonRenderer struct {
	w   io.Writer
	err error
	sum warn.Summary
}

// NewJSON returns a streaming JSON Lines renderer: one JSON object per
// message, one message per line, nothing buffered. Message text — which
// can embed attacker-controlled markup such as attribute values — is
// escaped by encoding/json, including the <, > and & HTML escapes, so
// the output is safe to embed. Close terminates the stream with one
// {"summary": ...} line carrying per-category counts and, when the
// renderer is the emitter's sink (directly or behind forwarding
// wrappers like Summary.Sink), per-rule suppression stats.
func NewJSON(w io.Writer) Renderer {
	return &jsonRenderer{w: w}
}

func (r *jsonRenderer) Write(m warn.Message) bool {
	if r.err != nil {
		return false
	}
	r.sum.Add(m)
	line, err := json.Marshal(jsonMessage{
		ID:       m.ID,
		Category: m.Category.String(),
		File:     m.File,
		Line:     m.Line,
		Col:      m.Col,
		Text:     m.Text,
		Fixes:    jsonFixes(m),
	})
	if err == nil {
		line = append(line, '\n')
		_, err = r.w.Write(line)
	}
	if err != nil {
		r.err = err
		return false
	}
	return true
}

// ObserveSuppressed counts a disabled emission for the summary line.
func (r *jsonRenderer) ObserveSuppressed(id string) { r.sum.AddSuppressed(id) }

// jsonSummary is the shape of the trailing summary line. The
// suppressed map keys are rule IDs; encoding/json sorts them, so the
// line is byte-stable for a given stream.
type jsonSummary struct {
	Errors     int            `json:"errors"`
	Warnings   int            `json:"warnings"`
	Style      int            `json:"style"`
	Suppressed map[string]int `json:"suppressed,omitempty"`
}

// Close writes the summary line (a partial stream still gets one, the
// same way a partial SARIF document is still closed) and reports the
// first stream error.
func (r *jsonRenderer) Close() error {
	line, err := json.Marshal(struct {
		Summary jsonSummary `json:"summary"`
	}{jsonSummary{
		Errors:     r.sum.Errors,
		Warnings:   r.sum.Warnings,
		Style:      r.sum.Style,
		Suppressed: r.sum.Suppressed,
	}})
	if err == nil && r.err == nil {
		line = append(line, '\n')
		if _, werr := r.w.Write(line); werr != nil {
			r.err = werr
		}
	}
	return r.err
}

// SARIF 2.1.0 document shapes (the subset weblint emits).
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	Version        string      `json:"version,omitempty"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID                   string           `json:"id"`
	ShortDescription     *sarifText       `json:"shortDescription,omitempty"`
	FullDescription      *sarifText       `json:"fullDescription,omitempty"`
	DefaultConfiguration *sarifRuleConfig `json:"defaultConfiguration,omitempty"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifRuleConfig struct {
	Level string `json:"level"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
	Fixes     []sarifFix      `json:"fixes,omitempty"`
}

// SARIF fix objects: a description plus artifact changes whose
// replacements carry byte-offset deletedRegions (weblint edits are
// byte spans over the checked document).
type sarifFix struct {
	Description sarifText             `json:"description"`
	Changes     []sarifArtifactChange `json:"artifactChanges"`
}

type sarifArtifactChange struct {
	ArtifactLocation sarifArtifact      `json:"artifactLocation"`
	Replacements     []sarifReplacement `json:"replacements"`
}

type sarifReplacement struct {
	DeletedRegion   sarifByteRegion `json:"deletedRegion"`
	InsertedContent *sarifText      `json:"insertedContent,omitempty"`
}

type sarifByteRegion struct {
	ByteOffset int `json:"byteOffset"`
	ByteLength int `json:"byteLength"`
}

// sarifFixes converts a message's optional fix.
func sarifFixes(m warn.Message) []sarifFix {
	if m.Fix == nil {
		return nil
	}
	reps := make([]sarifReplacement, len(m.Fix.Edits))
	for i, e := range m.Fix.Edits {
		reps[i] = sarifReplacement{
			DeletedRegion: sarifByteRegion{ByteOffset: e.Start, ByteLength: e.End - e.Start},
		}
		if e.Text != "" {
			reps[i].InsertedContent = &sarifText{Text: e.Text}
		}
	}
	return []sarifFix{{
		Description: sarifText{Text: m.Fix.Label},
		Changes: []sarifArtifactChange{{
			ArtifactLocation: sarifArtifact{URI: m.File},
			Replacements:     reps,
		}},
	}}
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifLevel maps weblint's categories onto SARIF result levels:
// errors are "error", warnings "warning", and style comments "note".
func sarifLevel(c warn.Category) string {
	switch c {
	case warn.Error:
		return "error"
	case warn.Warning:
		return "warning"
	case warn.Style:
		return "note"
	}
	return "none"
}

// sarifRenderer accumulates the stream and writes one SARIF log at
// Close. The rules table contains exactly the message definitions the
// stream referenced, sorted by ID, so two runs over the same stream
// produce byte-identical logs.
type sarifRenderer struct {
	w    io.Writer
	msgs []warn.Message
}

// NewSARIF returns a renderer producing a SARIF 2.1.0 log. SARIF is a
// single JSON document, so the log is written at Close; everything
// else about driving the renderer matches the streaming ones.
func NewSARIF(w io.Writer) Renderer {
	return &sarifRenderer{w: w}
}

func (r *sarifRenderer) Write(m warn.Message) bool {
	r.msgs = append(r.msgs, m)
	return true
}

func (r *sarifRenderer) Close() error {
	// Rules: the distinct IDs referenced, sorted for determinism.
	idSet := map[string]int{}
	var ids []string
	for _, m := range r.msgs {
		if _, ok := idSet[m.ID]; !ok {
			idSet[m.ID] = 0
			ids = append(ids, m.ID)
		}
	}
	sort.Strings(ids)
	rules := make([]sarifRule, len(ids))
	for i, id := range ids {
		idSet[id] = i
		rule := sarifRule{ID: id}
		if d := warn.Lookup(id); d != nil {
			rule.DefaultConfiguration = &sarifRuleConfig{Level: sarifLevel(d.Category)}
			if d.Format != "" {
				rule.ShortDescription = &sarifText{Text: d.Format}
			}
			if d.Explain != "" {
				rule.FullDescription = &sarifText{Text: d.Explain}
			}
		}
		rules[i] = rule
	}

	results := make([]sarifResult, len(r.msgs))
	for i, m := range r.msgs {
		res := sarifResult{
			RuleID:    m.ID,
			RuleIndex: idSet[m.ID],
			Level:     sarifLevel(m.Category),
			Message:   sarifText{Text: m.Text},
			Fixes:     sarifFixes(m),
		}
		region := &sarifRegion{StartLine: m.Line, StartColumn: m.Col}
		if region.StartLine < 1 {
			// SARIF requires startLine >= 1; document-level messages
			// anchor at the top.
			region.StartLine = 1
		}
		res.Locations = []sarifLocation{{
			PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: m.File},
				Region:           region,
			},
		}}
		results[i] = res
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "weblint",
				Version:        "2.0",
				InformationURI: "https://www.usenix.org/conference/1998-usenix-annual-technical-conference",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	out, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	_, err = r.w.Write(out)
	return err
}
