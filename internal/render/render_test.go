package render

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"weblint/internal/config"
	"weblint/internal/lint"
	"weblint/internal/warn"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureDoc exercises all three categories and pushes
// attacker-controlled attribute values into message text: the ALIGN
// value carries a double quote, markup metacharacters and a backslash,
// all of which must come out of the JSON renderers escaped.
const fixtureDoc = `<HTML>
<HEAD><TITLE>fixture</TITLE></HEAD>
<BODY>
<IMG SRC="x.gif">
<P ALIGN='evil"<script>&\'>text</P>
<B>bold</B>
</BODY>
</HTML>
`

// fixtureMessages lints the fixture the way the CLI does: slice API,
// source order, with the style check physical-font enabled so the
// stream carries every category.
func fixtureMessages(t *testing.T) []warn.Message {
	t.Helper()
	s := config.NewSettings()
	if err := s.Set.Enable("physical-font"); err != nil {
		t.Fatal(err)
	}
	l, err := lint.New(lint.Options{Settings: s})
	if err != nil {
		t.Fatal(err)
	}
	msgs := l.CheckString("fixture.html", fixtureDoc)
	if len(msgs) == 0 {
		t.Fatal("fixture produced no messages")
	}
	var have [3]bool
	for _, m := range msgs {
		have[m.Category] = true
	}
	if !have[warn.Error] || !have[warn.Warning] || !have[warn.Style] {
		t.Fatalf("fixture must produce all three categories, got %+v", msgs)
	}
	return msgs
}

// renderAll streams msgs through a fresh renderer of the given style.
func renderAll(t *testing.T, style string, msgs []warn.Message) string {
	t.Helper()
	var b bytes.Buffer
	r, err := New(style, &b)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range msgs {
		if !r.Write(m) {
			t.Fatalf("%s renderer cancelled mid-stream", style)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatalf("%s Close: %v", style, err)
	}
	return b.String()
}

// TestGolden renders the fixture stream in every style and compares
// against the checked-in golden files. Run with -update to regenerate.
func TestGolden(t *testing.T) {
	msgs := fixtureMessages(t)
	for _, style := range Styles() {
		t.Run(style, func(t *testing.T) {
			got := renderAll(t, style, msgs)
			golden := filepath.Join("testdata", style+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run go test ./internal/render -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("%s output differs from golden:\n--- got ---\n%s--- want ---\n%s", style, got, want)
			}
		})
	}
}

// TestJSONEscaping: the attacker-controlled attribute value round-trips
// through the JSON renderer intact, and the raw bytes never contain
// unescaped markup.
func TestJSONEscaping(t *testing.T) {
	msgs := fixtureMessages(t)
	out := renderAll(t, "json", msgs)
	if strings.Contains(out, "<script>") {
		t.Error("JSON output contains unescaped <script>")
	}
	found := false
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if !strings.HasPrefix(lines[len(lines)-1], `{"summary":`) {
		t.Errorf("stream does not end with a summary line: %q", lines[len(lines)-1])
	}
	for _, line := range lines[:len(lines)-1] {
		var m jsonMessage
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q is not valid JSON: %v", line, err)
		}
		if strings.Contains(m.Text, `evil"<script>&\`) {
			found = true
		}
		if m.ID == "" || m.File != "fixture.html" || m.Line < 1 {
			t.Errorf("degenerate JSON message: %+v", m)
		}
	}
	if !found {
		t.Error("attribute value did not round-trip through JSON")
	}
}

// TestSARIFMapping: the SARIF log parses, carries one result per
// message, and maps every category to its SARIF level.
func TestSARIFMapping(t *testing.T) {
	msgs := fixtureMessages(t)
	out := renderAll(t, "sarif", msgs)

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID                   string `json:"id"`
						DefaultConfiguration struct {
							Level string `json:"level"`
						} `json:"defaultConfiguration"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version = %q schema = %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "weblint" {
		t.Fatalf("runs = %+v", log.Runs)
	}
	run := log.Runs[0]
	if len(run.Results) != len(msgs) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(msgs))
	}

	wantLevel := map[warn.Category]string{
		warn.Error:   "error",
		warn.Warning: "warning",
		warn.Style:   "note",
	}
	seenLevels := map[string]bool{}
	for i, res := range run.Results {
		m := msgs[i]
		if res.RuleID != m.ID || res.Level != wantLevel[m.Category] {
			t.Errorf("result %d: ruleId=%s level=%s, want %s/%s", i, res.RuleID, res.Level, m.ID, wantLevel[m.Category])
		}
		seenLevels[res.Level] = true
		if res.RuleIndex < 0 || res.RuleIndex >= len(run.Tool.Driver.Rules) ||
			run.Tool.Driver.Rules[res.RuleIndex].ID != m.ID {
			t.Errorf("result %d: ruleIndex %d does not resolve to %s", i, res.RuleIndex, m.ID)
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != "fixture.html" || loc.Region.StartLine != m.Line {
			t.Errorf("result %d location = %+v", i, loc)
		}
	}
	for _, lvl := range []string{"error", "warning", "note"} {
		if !seenLevels[lvl] {
			t.Errorf("no result with level %q", lvl)
		}
	}
	// Rules must be sorted and carry default levels.
	rules := run.Tool.Driver.Rules
	for i := 1; i < len(rules); i++ {
		if rules[i-1].ID >= rules[i].ID {
			t.Errorf("rules not sorted: %s >= %s", rules[i-1].ID, rules[i].ID)
		}
	}
}

// TestRenderersDeterministic: rendering the same stream twice produces
// identical bytes for every style.
func TestRenderersDeterministic(t *testing.T) {
	msgs := fixtureMessages(t)
	for _, style := range Styles() {
		if a, b := renderAll(t, style, msgs), renderAll(t, style, msgs); a != b {
			t.Errorf("%s output is not deterministic", style)
		}
	}
}

func TestNewUnknownStyle(t *testing.T) {
	if _, err := New("yaml", &bytes.Buffer{}); err == nil {
		t.Error("New accepted an unknown style")
	}
	if Valid("yaml") || !Valid("sarif") {
		t.Error("Valid misclassifies styles")
	}
}

func TestEmptySARIF(t *testing.T) {
	var b bytes.Buffer
	r := NewSARIF(&b)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	var log map[string]any
	if err := json.Unmarshal(b.Bytes(), &log); err != nil {
		t.Fatalf("empty SARIF log is not valid JSON: %v", err)
	}
	if !strings.Contains(b.String(), `"results": []`) {
		t.Errorf("empty log must carry an empty results array:\n%s", b.String())
	}
}
