package baseline

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"weblint/internal/lint"
	"weblint/internal/warn"
)

// record lints src and returns the recorded baseline.
func record(t *testing.T, name, src string) *File {
	t.Helper()
	l := lint.MustNew(lint.Options{})
	rec := NewRecorder(nil, StaticSource(name, src))
	l.CheckStringTo(name, src, rec)
	return rec.File()
}

// diff lints src against base, returning the new findings.
func diff(t *testing.T, base *File, name, src string) ([]warn.Message, *Filter) {
	t.Helper()
	l := lint.MustNew(lint.Options{})
	var col warn.Collector
	f := NewFilter(base, &col, StaticSource(name, src))
	l.CheckStringTo(name, src, f)
	return col.Messages, f
}

const doc = `<HTML>
<HEAD><TITLE>t</TITLE></HEAD>
<BODY>
<IMG SRC="a.gif">
<P>text
</BODY>
</HTML>
`

func TestUnchangedRunIsClean(t *testing.T) {
	base := record(t, "d.html", doc)
	if base.Total() == 0 {
		t.Fatal("document should have findings to baseline")
	}
	news, f := diff(t, base, "d.html", doc)
	if len(news) != 0 {
		t.Fatalf("unchanged document produced %d new findings: %v", len(news), news)
	}
	if f.New != 0 || f.Matched != base.Total() {
		t.Errorf("New=%d Matched=%d, want 0 and %d", f.New, f.Matched, base.Total())
	}
}

func TestLineDriftTolerated(t *testing.T) {
	base := record(t, "d.html", doc)
	// Insert clean paragraphs above the findings: every line number
	// shifts, no fingerprint should.
	drifted := strings.Replace(doc, "<BODY>", "<BODY>\n<P>new intro\n<P>more intro", 1)
	news, _ := diff(t, base, "d.html", drifted)
	if len(news) != 0 {
		t.Fatalf("line drift produced %d new findings: %v", len(news), news)
	}
}

func TestNewFindingDetected(t *testing.T) {
	base := record(t, "d.html", doc)
	changed := strings.Replace(doc, "<P>text", "<P>text\n<IMG SRC=\"b.gif\">", 1)
	news, _ := diff(t, base, "d.html", changed)
	if len(news) == 0 {
		t.Fatal("injected finding not detected")
	}
	for _, m := range news {
		if m.ID != "img-alt" && m.ID != "img-size" {
			t.Errorf("unexpected new finding %s (%s)", m.ID, m.Text)
		}
	}
}

func TestMultiplicityCounted(t *testing.T) {
	// Two identical findings on identical lines share a fingerprint;
	// the baseline's count must absorb exactly two, not infinitely
	// many.
	two := strings.Replace(doc, "<P>text", "<IMG SRC=\"a.gif\">\n<P>text", 1)
	base := record(t, "d.html", two)
	three := strings.Replace(two, "<P>text", "<IMG SRC=\"a.gif\">\n<P>text", 1)
	news, _ := diff(t, base, "d.html", three)
	if len(news) == 0 {
		t.Fatal("third identical finding not detected as new")
	}
}

func TestFingerprintIgnoresSurroundingWhitespace(t *testing.T) {
	base := record(t, "d.html", doc)
	indented := strings.Replace(doc, `<IMG SRC="a.gif">`, `    <IMG SRC="a.gif">`, 1)
	news, _ := diff(t, base, "d.html", indented)
	if len(news) != 0 {
		t.Fatalf("re-indentation produced %d new findings: %v", len(news), news)
	}
}

func TestFileDiscriminates(t *testing.T) {
	base := record(t, "a.html", doc)
	news, _ := diff(t, base, "b.html", doc)
	if len(news) == 0 {
		t.Fatal("same findings in a different file should be new")
	}
}

func TestRoundTripFile(t *testing.T) {
	base := record(t, "d.html", doc)
	path := filepath.Join(t.TempDir(), "weblint-baseline.json")
	if err := base.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Total() != base.Total() || len(loaded.Findings) != len(base.Findings) {
		t.Fatalf("round trip lost findings: %d/%d vs %d/%d",
			loaded.Total(), len(loaded.Findings), base.Total(), len(base.Findings))
	}
	news, _ := diff(t, loaded, "d.html", doc)
	if len(news) != 0 {
		t.Fatalf("round-tripped baseline produced %d new findings", len(news))
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("{not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Parse([]byte(`{"version": 99, "findings": {}}`)); err == nil {
		t.Error("future version accepted")
	}
}

func TestMissingSourceStillFingerprints(t *testing.T) {
	// Without source text the context is empty: rule and file still
	// discriminate, and an unchanged run stays clean.
	l := lint.MustNew(lint.Options{})
	rec := NewRecorder(nil, nil)
	l.CheckStringTo("gone.html", doc, rec)

	var col warn.Collector
	f := NewFilter(rec.File(), &col, nil)
	l.CheckStringTo("gone.html", doc, f)
	if len(col.Messages) != 0 {
		t.Fatalf("context-less diff produced %d new findings", len(col.Messages))
	}
}

func TestFileSourceReadsAndCachesMisses(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.html")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	src := FileSource()
	if text, ok := src(path); !ok || text != doc {
		t.Fatalf("FileSource read = %q, %v", text, ok)
	}
	if _, ok := src(filepath.Join(dir, "absent.html")); ok {
		t.Fatal("absent file reported available")
	}
}

func TestSuppressionForwarding(t *testing.T) {
	var sum warn.Summary
	counting := sum.Sink(nil)
	f := NewFilter(New(), counting, nil)
	r := NewRecorder(f, nil)
	warn.ReplaySuppressed(r, []string{"img-alt", "img-alt"})
	if sum.Suppressed["img-alt"] != 2 {
		t.Fatalf("suppressions not forwarded through recorder+filter: %v", sum.Suppressed)
	}
}

func TestReflowedTagKeepsFingerprint(t *testing.T) {
	// Context hashes key on the enclosing tag's collapsed text, so a
	// formatter wrapping a long tag across lines must not resurrect
	// its baselined findings — even though every affected line's text
	// changes.
	one := strings.Replace(doc, `<IMG SRC="a.gif">`,
		`<IMG SRC="a.gif" BORDER=0 ISMAP>`, 1)
	base := record(t, "d.html", one)
	reflowed := strings.Replace(one, `<IMG SRC="a.gif" BORDER=0 ISMAP>`,
		"<IMG SRC=\"a.gif\"\n     BORDER=0\n     ISMAP>", 1)
	news, _ := diff(t, base, "d.html", reflowed)
	if len(news) != 0 {
		t.Fatalf("reflowing the tag produced %d new findings: %v", len(news), news)
	}
}

func TestContextIsEnclosingTag(t *testing.T) {
	src := "<P>\n<IMG\n SRC=\"a.gif\">\ntext here\n"
	fp := newFingerprinter(StaticSource("d.html", src))
	// Positions on any line of a multi-line tag resolve to the same
	// collapsed tag text.
	for _, line := range []int{2, 3} {
		got := fp.context(warn.Message{File: "d.html", Line: line, Col: 1})
		if got != `<IMG SRC="a.gif">` {
			t.Errorf("line %d context = %q, want collapsed tag", line, got)
		}
	}
	// Plain-text positions fall back to the line text.
	if got := fp.context(warn.Message{File: "d.html", Line: 4, Col: 1}); got != "text here" {
		t.Errorf("text context = %q, want line text", got)
	}
}

func TestCollapseSpace(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"  a  ", "a"},
		{"a b", "a b"},
		{"a  b", "a b"},
		{"a\t\r\n b", "a b"},
		{"<IMG\n  SRC=x\n  ALT=\"y\">", `<IMG SRC=x ALT="y">`},
	}
	for _, c := range cases {
		if got := collapseSpace(c.in); got != c.want {
			t.Errorf("collapseSpace(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFilterUsedPrunesPaidDownFindings(t *testing.T) {
	base := record(t, "d.html", doc)
	// Fix the IMG findings entirely: their fingerprints go unconsumed.
	fixed := strings.Replace(doc, `<IMG SRC="a.gif">`,
		`<IMG SRC="a.gif" ALT="a" WIDTH=1 HEIGHT=1>`, 1)
	news, f := diff(t, base, "d.html", fixed)
	if len(news) != 0 {
		t.Fatalf("fixing findings produced %d new ones: %v", len(news), news)
	}
	used := f.Used()
	if used.Total() >= base.Total() {
		t.Fatalf("Used() total = %d, want < %d (paid-down entries pruned)",
			used.Total(), base.Total())
	}
	if used.Total() != f.Matched {
		t.Errorf("Used() total = %d, want Matched = %d", used.Total(), f.Matched)
	}
	// The pruned baseline still covers everything that remains.
	news, _ = diff(t, used, "d.html", fixed)
	if len(news) != 0 {
		t.Fatalf("pruned baseline produced %d new findings: %v", len(news), news)
	}
}
