// Package baseline implements finding baselines: record the findings
// of one run, then diff later runs against the record so that only NEW
// findings fail. It is what makes weblint enforceable on a codebase
// with existing debt — adopt it today, baseline today's findings, and
// CI goes red only when a change introduces a problem that was not
// already there.
//
// # Fingerprints
//
// Each finding is identified by a fingerprint of its rule ID, its
// document name, and a context hash. Line NUMBERS deliberately do not
// participate: inserting a paragraph above a baselined finding shifts
// every line below it, and a baseline keyed on positions would light
// up the whole file. The context is the text of the enclosing markup
// token (located through the tokenizer's byte offsets) with its
// whitespace collapsed, so reflowing a tag across lines does not
// resurrect its findings either; findings in plain text fall back to
// the whitespace-trimmed source line. Identical findings (same rule,
// same context) are counted, so a file with fifty baselined `<IMG>`
// tags missing ALT fails when a fifty-first appears — even though its
// fingerprint matches.
//
// # Composition
//
// The layer rides the streaming pipeline as two warn.Sink wrappers:
// a Recorder counts every finding into a File, and a Filter forwards
// only the findings a baseline does not cover. Both forward
// suppression observations, so per-rule suppression stats survive
// them.
package baseline

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"weblint/internal/htmltoken"
	"weblint/internal/textpos"
	"weblint/internal/warn"
)

// Version is the baseline file format version this package writes.
// Version 2 switched context hashes from raw source lines to
// whitespace-collapsed enclosing-tag text; version-1 baselines must be
// re-recorded, so Parse rejects them rather than silently reporting
// every finding as new.
const Version = 2

// File is a recorded baseline: fingerprint -> occurrence count. It
// serialises as a small stable JSON document (keys sorted by
// encoding/json), so baselines diff cleanly under version control.
type File struct {
	// Version identifies the file format.
	Version int `json:"version"`
	// Tool names the producer.
	Tool string `json:"tool"`
	// Findings maps finding fingerprints to how many findings shared
	// each fingerprint when the baseline was recorded.
	Findings map[string]int `json:"findings"`
}

// New returns an empty baseline.
func New() *File {
	return &File{Version: Version, Tool: "weblint", Findings: map[string]int{}}
}

// Add records one occurrence of a fingerprint.
func (f *File) Add(fp string) {
	if f.Findings == nil {
		f.Findings = map[string]int{}
	}
	f.Findings[fp]++
}

// Total returns the number of recorded findings (counting
// multiplicity).
func (f *File) Total() int {
	n := 0
	for _, c := range f.Findings {
		n += c
	}
	return n
}

// Encode renders the baseline as JSON with a trailing newline.
func (f *File) Encode() []byte {
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		// A map[string]int cannot fail to marshal; keep the signature
		// ergonomic for the common path.
		panic("baseline: encode: " + err.Error())
	}
	return append(out, '\n')
}

// WriteFile writes the baseline to path.
func (f *File) WriteFile(path string) error {
	return os.WriteFile(path, f.Encode(), 0o644)
}

// Parse reads a baseline from its JSON form.
func Parse(data []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("baseline: parsing: %w", err)
	}
	if f.Version != Version {
		return nil, fmt.Errorf("baseline: unsupported version %d (this weblint writes %d)", f.Version, Version)
	}
	if f.Findings == nil {
		f.Findings = map[string]int{}
	}
	return &f, nil
}

// Load reads a baseline file from disk.
func Load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// Fingerprint derives the stable identity of a finding: rule ID,
// document name, and its context (the whitespace-collapsed enclosing
// tag text, or the trimmed source line — see fingerprinter.context).
// The hash is the first 16 hex digits of SHA-256 over the three parts
// — short enough to keep baselines readable, long enough that
// collisions are not a practical concern.
func Fingerprint(id, file, context string) string {
	h := sha256.New()
	h.Write([]byte(id))
	h.Write([]byte{0})
	h.Write([]byte(file))
	h.Write([]byte{0})
	h.Write([]byte(strings.TrimSpace(context)))
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:8])
}

// SourceFunc resolves a document's full text for context extraction.
// The boolean result reports whether the text is available; findings
// in unavailable documents fingerprint with an empty context (rule ID
// and document name still discriminate).
type SourceFunc func(file string) (string, bool)

// FileSource returns a SourceFunc reading documents from disk with a
// small bounded cache. It is the right source for CLI runs whose
// message File fields are paths: the stream arrives grouped per
// document, so one live entry does the real work, and the bound keeps
// a 10k-file run from pinning every file's text until exit (the same
// reasoning as the fingerprinter's own index-cache bound).
func FileSource() SourceFunc {
	cache := map[string]*string{}
	return func(file string) (string, bool) {
		if s, ok := cache[file]; ok {
			if s == nil {
				return "", false
			}
			return *s, true
		}
		if len(cache) >= indexCacheMax {
			clear(cache)
		}
		data, err := os.ReadFile(file)
		if err != nil {
			cache[file] = nil
			return "", false
		}
		s := string(data)
		cache[file] = &s
		return s, true
	}
}

// StaticSource returns a SourceFunc serving one in-memory document —
// the right source when a single submission is being checked (the
// gateway) or when the caller swaps documents per check (poacher).
func StaticSource(name, src string) SourceFunc {
	return func(file string) (string, bool) {
		if file == name {
			return src, true
		}
		return "", false
	}
}

// tagSpan is the byte range [start, end) of one markup token.
type tagSpan struct{ start, end int }

// docInfo caches everything context extraction needs for one document:
// its line index, its text, and the byte spans of its markup tokens in
// document order.
type docInfo struct {
	ix    *textpos.Index
	src   string
	spans []tagSpan
}

// fingerprinter computes message fingerprints, caching one document
// record per file.
type fingerprinter struct {
	src  SourceFunc
	docs map[string]*docInfo
}

func newFingerprinter(src SourceFunc) fingerprinter {
	return fingerprinter{src: src, docs: map[string]*docInfo{}}
}

// indexCacheMax bounds the per-document cache. Message streams arrive
// grouped by document, so one live entry does the real work; the cap
// only stops a crawl-length run (poacher visits hundreds of pages)
// from pinning every page's text until the run ends.
const indexCacheMax = 16

// tagSpans tokenizes src and collects the byte span of every markup
// token (everything except plain text). Tokens arrive in document
// order, so the result is sorted by start and non-overlapping.
func tagSpans(src string) []tagSpan {
	t := htmltoken.New(src)
	var spans []tagSpan
	var tok htmltoken.Token
	for t.NextInto(&tok) {
		if tok.Type == htmltoken.Text {
			continue
		}
		spans = append(spans, tagSpan{tok.Offset, tok.Offset + len(tok.Raw)})
	}
	return spans
}

func (fp *fingerprinter) doc(file string) *docInfo {
	if d, ok := fp.docs[file]; ok {
		return d
	}
	var d *docInfo
	if fp.src != nil {
		if text, have := fp.src(file); have {
			d = &docInfo{ix: textpos.New(text), src: text, spans: tagSpans(text)}
		}
	}
	if len(fp.docs) >= indexCacheMax {
		clear(fp.docs)
	}
	fp.docs[file] = d // nil caches the miss too
	return d
}

// context returns the whitespace-collapsed text of the markup token
// enclosing the message position, the trimmed line text when the
// position falls in plain text, or "" when the document is
// unavailable. Keying on the enclosing token makes fingerprints
// survive reflowing a multi-line tag: the collapsed token text is
// identical however the attributes wrap.
func (fp *fingerprinter) context(m warn.Message) string {
	d := fp.doc(m.File)
	if d == nil {
		return ""
	}
	off := d.ix.LineStart(m.Line - 1)
	if m.Col > 0 {
		off += m.Col - 1
	}
	if off > len(d.src) {
		off = len(d.src)
	}
	// Last span starting at or before off.
	i := sort.Search(len(d.spans), func(i int) bool { return d.spans[i].start > off }) - 1
	if i >= 0 && off < d.spans[i].end {
		return collapseSpace(d.src[d.spans[i].start:d.spans[i].end])
	}
	return d.ix.LineText(m.Line - 1)
}

// collapseSpace trims s and collapses every internal whitespace run to
// a single space.
func collapseSpace(s string) string {
	s = strings.TrimSpace(s)
	collapsed := true
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
			(c == ' ' && i+1 < len(s) && s[i+1] == ' ') {
			collapsed = false
			break
		}
	}
	if collapsed {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	space := false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case ' ', '\t', '\n', '\r', '\f':
			space = true
		default:
			if space && b.Len() > 0 {
				b.WriteByte(' ')
			}
			space = false
			b.WriteByte(c)
		}
	}
	return b.String()
}

func (fp *fingerprinter) of(m warn.Message) string {
	return Fingerprint(m.ID, m.File, fp.context(m))
}

// Recorder is a warn.Sink recording every finding into a baseline File
// and forwarding it to Next (a nil Next records without forwarding).
type Recorder struct {
	// Next receives every message after recording.
	Next warn.Sink

	file *File
	fp   fingerprinter
}

// NewRecorder returns a Recorder over an empty baseline, resolving
// finding contexts through src.
func NewRecorder(next warn.Sink, src SourceFunc) *Recorder {
	return &Recorder{Next: next, file: New(), fp: newFingerprinter(src)}
}

// Write records m and forwards it.
func (r *Recorder) Write(m warn.Message) bool {
	r.file.Add(r.fp.of(m))
	if r.Next == nil {
		return true
	}
	return r.Next.Write(m)
}

// ObserveSuppressed forwards suppression observations to Next.
func (r *Recorder) ObserveSuppressed(id string) {
	if o, ok := r.Next.(warn.SuppressionObserver); ok {
		o.ObserveSuppressed(id)
	}
}

// File returns the baseline recorded so far.
func (r *Recorder) File() *File { return r.file }

// Filter is a warn.Sink forwarding only the findings a baseline does
// not cover. Each baselined fingerprint carries an allowance equal to
// its recorded count: the first N findings matching it are absorbed,
// further ones are new and flow through.
type Filter struct {
	// Next receives the new findings.
	Next warn.Sink

	remaining map[string]int
	used      map[string]int
	fp        fingerprinter

	// New counts the findings forwarded (not covered by the baseline);
	// Matched counts the findings the baseline absorbed.
	New     int
	Matched int
}

// NewFilter returns a Filter diffing against base, resolving finding
// contexts through src.
func NewFilter(base *File, next warn.Sink, src SourceFunc) *Filter {
	remaining := make(map[string]int, len(base.Findings))
	for k, v := range base.Findings {
		remaining[k] = v
	}
	return &Filter{Next: next, remaining: remaining, used: map[string]int{}, fp: newFingerprinter(src)}
}

// Write absorbs baselined findings and forwards new ones.
func (f *Filter) Write(m warn.Message) bool {
	fp := f.fp.of(m)
	if f.remaining[fp] > 0 {
		f.remaining[fp]--
		f.used[fp]++
		f.Matched++
		return true
	}
	f.New++
	if f.Next == nil {
		return true
	}
	return f.Next.Write(m)
}

// Used returns a baseline holding only the fingerprints this run
// actually consumed, at their consumed counts. Writing it back over
// the input baseline prunes paid-down findings — entries whose code
// has been fixed since the baseline was recorded — without granting
// any allowance for new ones (those were forwarded, not recorded).
func (f *Filter) Used() *File {
	out := New()
	for k, v := range f.used {
		out.Findings[k] = v
	}
	return out
}

// ObserveSuppressed forwards suppression observations to Next.
func (f *Filter) ObserveSuppressed(id string) {
	if o, ok := f.Next.(warn.SuppressionObserver); ok {
		o.ObserveSuppressed(id)
	}
}
