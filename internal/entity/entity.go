// Package entity provides the HTML character entity tables used when
// checking entity references in document text and attribute values.
//
// The tables cover the full HTML 4.0 set (the Latin-1, symbol and
// special collections); entities introduced by HTML 4.0 are marked so
// that documents checked against HTML 3.2 can be warned about them.
package entity

import (
	"strings"
	"unicode/utf8"
)

// Info describes one named character entity.
type Info struct {
	// Rune is the character the entity denotes.
	Rune rune
	// HTML40 reports whether the entity was introduced by HTML 4.0
	// (true) or was already defined in HTML 2.0/3.2 (false).
	HTML40 bool
}

// Lookup returns the entity info for name (case-sensitive, without the
// leading '&' and trailing ';'). The boolean result reports whether the
// name is a known entity.
func Lookup(name string) (Info, bool) {
	info, ok := table[name]
	return info, ok
}

// Known reports whether name is a known entity in HTML 4.0.
func Known(name string) bool {
	_, ok := table[name]
	return ok
}

// KnownIn reports whether name is a known entity for the given HTML
// version, where html40 selects the full 4.0 set and false restricts
// to the 2.0/3.2 set.
func KnownIn(name string, html40 bool) bool {
	info, ok := table[name]
	if !ok {
		return false
	}
	if info.HTML40 && !html40 {
		return false
	}
	return true
}

// Count returns the number of named entities in the table.
func Count() int { return len(table) }

// Ref is one entity reference found by Scan.
type Ref struct {
	// Name is the entity name (for &amp;) or the digits (for
	// &#123;), without delimiters.
	Name string
	// Numeric reports whether the reference is a numeric character
	// reference.
	Numeric bool
	// Terminated reports whether the reference ended with ';'.
	Terminated bool
	// Offset is the byte offset of the '&' within the scanned text.
	Offset int
}

// Scan finds entity references in text. Bare ampersands which do not
// introduce a reference (not followed by a letter or '#') are reported
// as a Ref with empty Name, so callers can warn about unescaped '&'.
//
// Scan allocates the returned slice; hot paths should use ScanFunc,
// which streams the same references to a callback without allocating.
func Scan(text string) []Ref {
	var refs []Ref
	ScanFunc(text, func(r Ref) {
		refs = append(refs, r)
	})
	return refs
}

// ScanFunc calls fn for every entity reference in text, in document
// order. It finds exactly the references Scan returns, but performs no
// per-token allocation, so a checker processing entity-dense documents
// pays only for the findings it emits.
func ScanFunc(text string, fn func(Ref)) {
	for i := 0; i < len(text); {
		k := strings.IndexByte(text[i:], '&')
		if k < 0 {
			return
		}
		i += k
		rest := text[i+1:]
		switch {
		case strings.HasPrefix(rest, "#"):
			j := 1
			for j < len(rest) && isDigitOrHex(rest[j], j) {
				j++
			}
			term := j < len(rest) && rest[j] == ';'
			fn(Ref{Name: rest[:j], Numeric: true, Terminated: term, Offset: i})
			i += j + 1
		case len(rest) > 0 && isAlpha(rest[0]):
			j := 0
			for j < len(rest) && isAlnum(rest[j]) {
				j++
			}
			term := j < len(rest) && rest[j] == ';'
			fn(Ref{Name: rest[:j], Terminated: term, Offset: i})
			i += j + 1
		default:
			fn(Ref{Offset: i})
			i++
		}
	}
}

// Decode expands all well-formed entity references in text, leaving
// unknown or malformed references untouched.
func Decode(text string) string {
	if !strings.ContainsRune(text, '&') {
		return text
	}
	var b strings.Builder
	b.Grow(len(text))
	last := 0
	ScanFunc(text, func(r Ref) {
		if !r.Terminated {
			return
		}
		var c rune
		if r.Numeric {
			c = decodeNumeric(r.Name)
		} else if info, ok := table[r.Name]; ok {
			c = info.Rune
		}
		if c == 0 {
			return
		}
		end := r.Offset + 1 + len(r.Name) + 1 // & name ;
		b.WriteString(text[last:r.Offset])
		b.WriteRune(c)
		last = end
	})
	b.WriteString(text[last:])
	return b.String()
}

// Encode replaces the SGML metacharacters <, > and & in text with
// their entity forms.
func Encode(text string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(text)
}

func decodeNumeric(digits string) rune {
	if len(digits) < 2 || digits[0] != '#' {
		return 0
	}
	body := digits[1:]
	base := 10
	if body != "" && (body[0] == 'x' || body[0] == 'X') {
		base = 16
		body = body[1:]
	}
	var n int64
	for i := 0; i < len(body); i++ {
		d := hexVal(body[i])
		if d < 0 || d >= base {
			return 0
		}
		n = n*int64(base) + int64(d)
		if n > utf8.MaxRune {
			return 0
		}
	}
	if body == "" || !utf8.ValidRune(rune(n)) {
		return 0
	}
	return rune(n)
}

func hexVal(b byte) int {
	switch {
	case b >= '0' && b <= '9':
		return int(b - '0')
	case b >= 'a' && b <= 'f':
		return int(b-'a') + 10
	case b >= 'A' && b <= 'F':
		return int(b-'A') + 10
	}
	return -1
}

func isAlpha(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
}

func isAlnum(b byte) bool {
	return isAlpha(b) || b >= '0' && b <= '9'
}

// isDigitOrHex accepts decimal digits anywhere and 'x'/'X' plus hex
// digits after the first position (for &#xA0; style references).
func isDigitOrHex(b byte, pos int) bool {
	if b >= '0' && b <= '9' {
		return true
	}
	if pos == 1 && (b == 'x' || b == 'X') {
		return true
	}
	return hexVal(b) >= 0
}
