package entity

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLookupKnown(t *testing.T) {
	cases := map[string]rune{
		"amp": '&', "lt": '<', "gt": '>', "quot": '"',
		"nbsp": 160, "copy": 169, "eacute": 233, "szlig": 223,
		"alpha": 945, "Omega": 937, "hellip": 8230, "trade": 8482,
		"euro": 8364, "mdash": 8212, "nsub": 8836, "yuml": 255,
	}
	for name, want := range cases {
		info, ok := Lookup(name)
		if !ok {
			t.Errorf("Lookup(%q) not found", name)
			continue
		}
		if info.Rune != want {
			t.Errorf("Lookup(%q).Rune = %d, want %d", name, info.Rune, want)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	for _, name := range []string{"bogus", "AMP", "nbsp2", ""} {
		if _, ok := Lookup(name); ok {
			t.Errorf("Lookup(%q) unexpectedly found", name)
		}
	}
}

func TestCount(t *testing.T) {
	// HTML 4.0 defines 252 character entities.
	if got := Count(); got != 252 {
		t.Errorf("Count() = %d, want 252 (the HTML 4.0 entity set)", got)
	}
}

func TestKnownIn(t *testing.T) {
	// Latin-1 entities exist in both versions.
	if !KnownIn("eacute", false) || !KnownIn("eacute", true) {
		t.Error("eacute should be known in 3.2 and 4.0")
	}
	// The symbol/special collections are 4.0-only.
	for _, name := range []string{"alpha", "euro", "mdash", "trade"} {
		if KnownIn(name, false) {
			t.Errorf("%s should not be known in HTML 3.2", name)
		}
		if !KnownIn(name, true) {
			t.Errorf("%s should be known in HTML 4.0", name)
		}
	}
	if KnownIn("bogus", true) {
		t.Error("bogus entity known")
	}
}

func TestVersionSplit(t *testing.T) {
	html32 := 0
	for _, info := range table {
		if !info.HTML40 {
			html32++
		}
	}
	// 96 Latin-1 entities plus amp, lt, gt, quot.
	if html32 != 100 {
		t.Errorf("HTML 3.2 entity count = %d, want 100", html32)
	}
}

func TestScanTerminated(t *testing.T) {
	refs := Scan("a &amp; b &copy; c")
	if len(refs) != 2 {
		t.Fatalf("got %d refs, want 2: %+v", len(refs), refs)
	}
	if refs[0].Name != "amp" || !refs[0].Terminated || refs[0].Numeric {
		t.Errorf("ref 0 = %+v", refs[0])
	}
	if refs[1].Name != "copy" || !refs[1].Terminated {
		t.Errorf("ref 1 = %+v", refs[1])
	}
}

func TestScanUnterminated(t *testing.T) {
	refs := Scan("fish &amp chips")
	if len(refs) != 1 || refs[0].Name != "amp" || refs[0].Terminated {
		t.Fatalf("refs = %+v", refs)
	}
}

func TestScanNumeric(t *testing.T) {
	refs := Scan("&#160; &#xA0; &#999")
	if len(refs) != 3 {
		t.Fatalf("got %d refs: %+v", len(refs), refs)
	}
	if !refs[0].Numeric || !refs[0].Terminated || refs[0].Name != "#160" {
		t.Errorf("decimal ref = %+v", refs[0])
	}
	if !refs[1].Numeric || !refs[1].Terminated || refs[1].Name != "#xA0" {
		t.Errorf("hex ref = %+v", refs[1])
	}
	if refs[2].Terminated {
		t.Errorf("unterminated numeric ref marked terminated: %+v", refs[2])
	}
}

func TestScanBareAmpersand(t *testing.T) {
	refs := Scan("AT&T and K&R & so on")
	bare := 0
	for _, r := range refs {
		if r.Name == "" && !r.Numeric {
			bare++
		}
	}
	// "&T" and "&R" parse as unterminated refs; "& " is bare.
	if bare != 1 {
		t.Errorf("bare ampersands = %d, want 1 (refs: %+v)", bare, refs)
	}
}

func TestScanOffsets(t *testing.T) {
	text := "xx &lt; yy &gt;"
	for _, r := range Scan(text) {
		if text[r.Offset] != '&' {
			t.Errorf("offset %d does not point at '&'", r.Offset)
		}
	}
}

func TestDecode(t *testing.T) {
	cases := map[string]string{
		"&lt;b&gt;":        "<b>",
		"&amp;amp;":        "&amp;", // only one level of decoding
		"caf&eacute;":      "café",
		"&#65;&#x42;":      "AB",
		"&unknown; stays":  "&unknown; stays",
		"&amp no semi":     "&amp no semi",
		"plain text":       "plain text",
		"&copy; 1998":      "© 1998",
		"&#xZZ; malformed": "&#xZZ; malformed",
	}
	for in, want := range cases {
		if got := Decode(in); got != want {
			t.Errorf("Decode(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEncode(t *testing.T) {
	if got := Encode(`a < b & c > d`); got != "a &lt; b &amp; c &gt; d" {
		t.Errorf("Encode = %q", got)
	}
}

// TestEncodeDecodeRoundTrip is a property test: decoding an encoded
// string always returns the original.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(s string) bool {
		return Decode(Encode(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestScanNeverPanics fuzzes Scan with arbitrary strings.
func TestScanNeverPanics(t *testing.T) {
	f := func(s string) bool {
		refs := Scan(s)
		for _, r := range refs {
			if r.Offset < 0 || r.Offset >= len(s) || s[r.Offset] != '&' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestAllEntitiesDecode checks every table entry decodes through the
// full pipeline.
func TestAllEntitiesDecode(t *testing.T) {
	for name, info := range table {
		in := "&" + name + ";"
		got := Decode(in)
		if got != string(info.Rune) {
			t.Errorf("Decode(%q) = %q, want %q", in, got, string(info.Rune))
		}
	}
}

func TestDecodeMixedContent(t *testing.T) {
	in := "x &lt;tag&gt; y &amp; z &copy;"
	want := "x <tag> y & z ©"
	if got := Decode(in); got != want {
		t.Errorf("Decode(%q) = %q, want %q", in, got, want)
	}
}

func TestDecodeNumericEdge(t *testing.T) {
	if got := Decode("&#0;"); got != "&#0;" {
		// NUL is technically a valid rune; current policy keeps it
		// undecoded is fine either way — pin the behaviour.
		if got != "\x00" {
			t.Errorf("Decode(&#0;) = %q", got)
		}
	}
	if got := Decode("&#1114112;"); strings.ContainsRune(got, 0xFFFD) {
		t.Errorf("out-of-range rune decoded: %q", got)
	}
}

// TestScanFuncMatchesScan proves the streaming ScanFunc visits exactly
// the refs the allocating Scan collects, in order, over adversarial
// inputs — quick-checked so edge shapes (trailing '&', runs of '&&',
// digits after '&#', case-mixed names) are covered without hand
// enumeration.
func TestScanFuncMatchesScan(t *testing.T) {
	same := func(s string) bool {
		var streamed []Ref
		ScanFunc(s, func(r Ref) { streamed = append(streamed, r) })
		collected := Scan(s)
		if len(streamed) != len(collected) {
			return false
		}
		for i := range streamed {
			if streamed[i] != collected[i] {
				return false
			}
		}
		return true
	}
	// Hand-picked edge shapes first.
	for _, s := range []string{
		"", "&", "&&", "&;", "&amp;", "&amp", "&#65;", "&#x41;", "&#x41",
		"&#;", "&#", "a & b &lt; c", "&bogus;&bogus;", "tail&",
		"&amp;&#38;&#x26;&", "\n&\n&amp\n", strings.Repeat("&", 64),
	} {
		if !same(s) {
			t.Errorf("ScanFunc and Scan disagree on %q", s)
		}
	}
	if err := quick.Check(func(s string) bool { return same(s) }, nil); err != nil {
		t.Error(err)
	}
}
