// Sitecheck: auditing a whole site tree through the library, the way
// the -R switch does (paper Section 4.5) — per-page syntax checks plus
// the site-level analyses: directories without index files, orphan
// pages, and broken local links.
//
// The example materialises a small synthetic site (with deliberate
// defects) into a temporary directory and audits it.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"weblint/internal/corpus"
	"weblint/internal/sitewalk"
	"weblint/internal/warn"
)

func main() {
	root, err := os.MkdirTemp("", "weblint-sitecheck")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	// A 12-page site with 2 orphan pages, 2 broken links, and one
	// directory without an index file.
	pages := corpus.GenerateSite(corpus.SiteConfig{
		Seed: 1998, Pages: 12, Orphans: 2, BrokenLinks: 2, Subdirs: 2,
		Errors: corpus.ErrorRates{MissingAlt: 0.3},
	})
	for rel, content := range pages {
		full := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	report, err := sitewalk.Walk(root, sitewalk.Options{CollectExternal: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("checked %d pages\n\n", len(report.Pages))

	byID := map[string][]warn.Message{}
	for _, m := range report.Messages {
		byID[m.ID] = append(byID[m.ID], m)
	}
	for _, id := range []string{"no-index-file", "orphan-page", "bad-link", "img-alt"} {
		fmt.Printf("%s (%d):\n", id, len(byID[id]))
		for i, m := range byID[id] {
			if i == 5 {
				fmt.Printf("  ... and %d more\n", len(byID[id])-5)
				break
			}
			fmt.Printf("  %s(%d): %s\n", m.File, m.Line, m.Text)
		}
	}

	fmt.Printf("\nexternal links found (for a remote link checker): %d\n", len(report.External))
}
