// Quickstart: the paper's three-line usage of the Weblint module
// (Section 5.4), in Go. Checks the paper's own example page and prints
// the report in both the traditional lint style and the -s short
// style.
package main

import (
	"fmt"

	"weblint"
)

const page = `<HTML>
<HEAD>
<TITLE>example page
</HEAD>
<BODY BGCOLOR="fffff" TEXT=#00ff00>
<H1>My Example</H2>
Click <B><A HREF="a.html>here</B></A>
for more details.
</BODY>
</HTML>
`

func main() {
	// The simplest use: package-level check with defaults.
	msgs := weblint.CheckString("test.html", page)

	fmt.Println("traditional lint style:")
	for _, m := range msgs {
		fmt.Println("  " + weblint.LintStyle.Format(m))
	}

	fmt.Println("\nshort style (-s):")
	for _, m := range msgs {
		fmt.Println("  " + weblint.ShortStyle.Format(m))
	}

	fmt.Printf("\n%d problems found\n", len(msgs))
}
