// Robotlint: embedding weblint in a robot, the paper's Section 5.3
// ("the Weblint module from weblint 2 makes it easier to embed weblint
// functionality in a robot, such as a link checker") and the paper's
// poacher.
//
// The example serves a small synthetic site (with planted defects and
// a robots.txt exclusion) on a local test server, crawls it, lints
// every page, and validates the links it saw — all in one process, so
// it is runnable without a network.
package main

import (
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"weblint/internal/corpus"
	"weblint/internal/lint"
	"weblint/internal/robot"
	"weblint/internal/warn"
)

func main() {
	pages := corpus.GenerateSite(corpus.SiteConfig{
		Seed: 7, Pages: 10, BrokenLinks: 2, Subdirs: 2,
		Errors: corpus.ErrorRates{Misspell: 0.2, Overlap: 0.2},
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/robots.txt", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "User-agent: *\nDisallow: /sub1/\n")
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		path := strings.TrimPrefix(r.URL.Path, "/")
		if path == "" {
			path = "index.html"
		}
		body, ok := pages[path]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html")
		fmt.Fprint(w, body)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	linter := lint.MustNew(lint.Options{})
	r := robot.NewRobot()
	r.Client = srv.Client()
	r.UserAgent = "poacher-example/1.0"

	stats := robot.NewCrawlStats()
	problemPages := 0
	broken := 0

	fetched, err := r.Crawl(srv.URL+"/", func(p robot.Page) {
		stats.Record(p)
		if p.Err != nil || p.Status != http.StatusOK {
			broken++
			fmt.Printf("broken link target: %s (HTTP %d)\n", p.URL, p.Status)
			return
		}
		msgs := linter.CheckString(p.URL, p.Body)
		if len(msgs) > 0 {
			problemPages++
			fmt.Printf("%s: %d problems, first: %s\n",
				p.URL, len(msgs), warn.Short{}.Format(msgs[0]))
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ncrawl finished: %d fetches, %d pages with problems, %d broken links\n",
		fetched, problemPages, broken)
	fmt.Print(stats.Summary())
	fmt.Println("(note: /sub1/ pages were excluded by robots.txt)")
}
