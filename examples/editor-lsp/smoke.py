#!/usr/bin/env python3
"""Scripted LSP round trip against a weblint-lsp binary over stdio.

Usage: smoke.py <weblint-lsp binary> <html file> [--require-fix]

Drives the real protocol the way an editor does: initialize ->
didOpen -> read publishDiagnostics -> codeAction at each diagnostic
-> incremental didChange round trip (insert a defect via a
range-scoped change, watch the diagnostic appear, revert it, watch it
vanish) -> pull diagnostics (textDocument/diagnostic, LSP 3.17) ->
shutdown/exit. Exits non-zero (with a message) when any step
misbehaves; with --require-fix it additionally fails unless at least
one diagnostic offers a quick fix (CI passes it with a sample known
to be fixable). It is also a handy sanity check for a locally built
server against any page.
"""
import json
import subprocess
import sys


class Client:
    def __init__(self, argv):
        self.proc = subprocess.Popen(
            argv, stdin=subprocess.PIPE, stdout=subprocess.PIPE)
        self.next_id = 0

    def send(self, method, params, request=False):
        msg = {"jsonrpc": "2.0", "method": method, "params": params}
        if request:
            self.next_id += 1
            msg["id"] = self.next_id
        body = json.dumps(msg).encode()
        self.proc.stdin.write(b"Content-Length: %d\r\n\r\n" % len(body) + body)
        self.proc.stdin.flush()
        return msg.get("id")

    def read(self):
        length = None
        while True:
            line = self.proc.stdout.readline()
            if not line:
                sys.exit("server closed stdout mid-session")
            line = line.strip()
            if not line:
                break
            name, _, value = line.partition(b":")
            if name.lower() == b"content-length":
                length = int(value)
        if length is None:
            sys.exit("frame without Content-Length")
        return json.loads(self.proc.stdout.read(length))

    def wait_response(self, rid):
        while True:
            m = self.read()
            if m.get("id") == rid and "method" not in m:
                if "error" in m:
                    sys.exit(f"request {rid} failed: {m['error']}")
                return m["result"]

    def wait_notification(self, method):
        while True:
            m = self.read()
            if m.get("method") == method:
                return m["params"]


def main():
    binary, page = sys.argv[1], sys.argv[2]
    with open(page) as f:
        text = f.read()
    cl = Client([binary])

    rid = cl.send("initialize", {"workspaceFolders": []}, request=True)
    caps = cl.wait_response(rid)["capabilities"]
    assert caps["codeActionProvider"], caps
    # 2 = incremental sync: the server applies range-scoped changes
    # and re-lints only the damaged window.
    assert caps["textDocumentSync"]["change"] == 2, caps
    assert "diagnosticProvider" in caps, caps
    cl.send("initialized", {})

    uri = "file://" + page
    cl.send("textDocument/didOpen", {"textDocument": {
        "uri": uri, "languageId": "html", "version": 1, "text": text}})
    diags = cl.wait_notification("textDocument/publishDiagnostics")
    assert diags["uri"] == uri, diags
    if not diags["diagnostics"]:
        sys.exit("no diagnostics for a known-dirty sample")
    for d in diags["diagnostics"]:
        assert d["source"] == "weblint" and d["code"], d
        assert 1 <= d["severity"] <= 4, d

    fixes = []
    for d in diags["diagnostics"]:
        rid = cl.send("textDocument/codeAction", {
            "textDocument": {"uri": uri},
            "range": d["range"],
            "context": {"diagnostics": [d]},
        }, request=True)
        for a in cl.wait_response(rid):
            assert a["kind"] in ("quickfix", "source.fixAll"), a
            assert a["edit"]["changes"][uri], a
            if a["kind"] == "quickfix":
                fixes.append(a["title"])
    if "--require-fix" in sys.argv and not fixes:
        sys.exit("no quick fix offered for a known-fixable sample")
    print(f"{len(diags['diagnostics'])} diagnostics, "
          f"{len(fixes)} quick fixes offered {fixes!r}")

    # Incremental sync round trip: a range-scoped insertion of an
    # ALT-less IMG at the top of the document must surface a new
    # img-alt diagnostic; reverting the insertion must restore the
    # original report exactly.
    before = diags["diagnostics"]
    snippet = '<IMG SRC="smoke.gif"> '
    zero = {"line": 0, "character": 0}
    cl.send("textDocument/didChange", {
        "textDocument": {"uri": uri, "version": 2},
        "contentChanges": [{"range": {"start": zero, "end": zero},
                            "text": snippet}]})
    edited = cl.wait_notification("textDocument/publishDiagnostics")
    codes = [d["code"] for d in edited["diagnostics"]]
    assert "img-alt" in codes, f"inserted IMG not flagged: {codes}"
    assert len(edited["diagnostics"]) > len(before), (before, edited)
    cl.send("textDocument/didChange", {
        "textDocument": {"uri": uri, "version": 3},
        "contentChanges": [{"range": {
            "start": zero, "end": {"line": 0, "character": len(snippet)}},
            "text": ""}]})
    reverted = cl.wait_notification("textDocument/publishDiagnostics")
    assert [(d["code"], d["range"]) for d in reverted["diagnostics"]] == \
        [(d["code"], d["range"]) for d in before], (before, reverted)
    print("incremental didChange round trip OK")

    # Pull diagnostics (LSP 3.17): the on-demand report must agree
    # with the last published state.
    rid = cl.send("textDocument/diagnostic",
                  {"textDocument": {"uri": uri}}, request=True)
    report = cl.wait_response(rid)
    assert report["kind"] == "full", report
    assert [d["code"] for d in report["items"]] == \
        [d["code"] for d in before], report
    print(f"pull diagnostics OK ({len(report['items'])} items)")

    rid = cl.send("shutdown", None, request=True)
    cl.wait_response(rid)
    cl.send("exit", None)
    code = cl.proc.wait(timeout=10)
    if code != 0:
        sys.exit(f"server exit code {code}")
    print("LSP smoke OK")


if __name__ == "__main__":
    main()
