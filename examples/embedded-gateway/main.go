// Embedded-gateway: mounting the weblint gateway inside an existing
// HTTP application (paper Section 5.3: "the gateway script for weblint
// 2 is designed to facilitate customisation, modification, and other
// tinkering").
//
// The example starts a server on a random port, submits the paper's
// example page to itself the way a browser form would, prints a
// fragment of the returned report, and exits — so it is runnable
// non-interactively. Pass -serve to keep it listening instead.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"

	"weblint/internal/gateway"
	"weblint/internal/lint"
	"weblint/internal/warn"
)

const page = `<HTML>
<HEAD>
<TITLE>example page
</HEAD>
<BODY BGCOLOR="fffff" TEXT=#00ff00>
<H1>My Example</H2>
Click <B><A HREF="a.html>here</B></A>
for more details.
</BODY>
</HTML>
`

func main() {
	serve := flag.Bool("serve", false, "keep serving on :8017 instead of the self-test")
	flag.Parse()

	h := gateway.NewHandler(lint.MustNew(lint.Options{}))
	// Customisation point: a corporate gateway might brand every
	// message. This "subclass" prefixes the message identifier.
	h.Formatter = warn.FormatterFunc(func(m warn.Message) string {
		return fmt.Sprintf(`<li class="%s"><b>%s</b> &#8212; line %d: %s</li>`,
			m.Category, m.ID, m.Line, htmlEscape(m.Text))
	})

	mux := http.NewServeMux()
	mux.Handle("/weblint/", http.StripPrefix("/weblint", h))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "application home; the linter lives at /weblint/")
	})

	if *serve {
		log.Println("serving on :8017 (form at http://localhost:8017/weblint/)")
		log.Fatal(http.ListenAndServe(":8017", mux))
	}

	// Self-test: run the mounted application and post the form.
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.PostForm(srv.URL+"/weblint/", url.Values{"html": {page}})
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("report lines from the embedded gateway:")
	for _, line := range strings.Split(string(body), "\n") {
		if strings.Contains(line, "<li class=") {
			fmt.Println("  " + strings.TrimSpace(line))
		}
	}
}

func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
