// Custom-warnings: configuring weblint to local taste, the paper's
// Section 4.4 — everything can be turned off, messages are enabled and
// disabled by identifier or category, and the warnings formatter can
// be replaced (Section 5.6's "sub-classing").
package main

import (
	"fmt"
	"strings"

	"weblint"
	"weblint/internal/config"
	"weblint/internal/warn"
)

const page = `<HTML>
<HEAD><TITLE>Style Demo</TITLE></HEAD>
<BODY>
<H1>Our Products</H1>
<P>For the catalogue, click <A HREF="catalogue.html">here</A>.
<P>We think <B>bold claims</B> need <I>italic disclaimers</I>.
</BODY>
</HTML>
`

func main() {
	// A house style, as a site configuration file would express it.
	houseStyle := `
# our house style guide
disable doctype-first
enable here-anchor physical-font
set tag-case upper
add here-words "catalogue"
`
	settings := weblint.NewSettings()
	cfg, err := config.Parse(strings.NewReader(houseStyle), "house-style.rc")
	if err != nil {
		panic(err)
	}
	if err := settings.Apply(cfg); err != nil {
		panic(err)
	}

	l := weblint.MustNew(weblint.Options{Settings: settings})
	msgs := l.CheckString("products.html", page)

	// A custom formatter — the gateway uses the same mechanism to
	// render warnings as HTML.
	banner := warn.FormatterFunc(func(m warn.Message) string {
		return fmt.Sprintf("[%s] line %-3d %s", strings.ToUpper(m.Category.String()[:4]), m.Line, m.Text)
	})

	fmt.Println("house-style report:")
	for _, m := range msgs {
		fmt.Println("  " + banner.Format(m))
	}

	// The same page under default settings, for contrast.
	fmt.Println("\ndefault report:")
	for _, m := range weblint.CheckString("products.html", page) {
		fmt.Println("  " + weblint.LintStyle.Format(m))
	}
}
