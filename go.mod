module weblint

go 1.24
