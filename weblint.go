// Package weblint is a utility library for checking the syntax and
// style of HTML pages, a Go implementation of the weblint tool
// described in "Weblint: Just Another Perl Hack" (Neil Bowers, USENIX
// 1998). It was inspired by lint, which performs a similar function
// for C programmers. Weblint does not aspire to be a strict SGML
// validator, but to provide helpful comments for humans.
//
// The simplest use mirrors the paper's three-line example:
//
//	l := weblint.MustNew(weblint.Options{})
//	msgs, err := l.CheckFile("test.html")
//	for _, m := range msgs {
//		fmt.Println(weblint.LintStyle.Format(m))
//	}
//
// Every output message has an identifier and belongs to one of three
// categories (errors, warnings, style comments); everything can be
// turned on or off, per the tool's philosophy that it "should not
// impose any specific definition of style". See the warn registry for
// the full message inventory and cmd/weblint for the command-line
// tool.
//
// # Zero-copy intake
//
// Documents that already exist as bytes — files, HTTP bodies, upload
// buffers — are checked without a string conversion copy through
// [Linter.CheckBytes]. The contract is simple because a check is
// synchronous: the caller must not mutate the slice while the call is
// in progress, and once it returns every Message owns its text, so
// the buffer may be reused or recycled immediately. CheckFile and
// CheckReader are built on it and read documents into pooled buffers:
// a warm check does not allocate for the document at all.
//
// # Checking a corpus
//
// Every real weblint deployment checks a fleet of documents: weblint
// *.html, the -R site recursion, the poacher robot. The batch engine
// lints a stream of jobs on GOMAXPROCS workers (one shared Linter —
// safe for concurrent use; the HTML spec and warning set are read-only
// and per-check state is pooled) and delivers results in deterministic
// input order — results are buffered per input slot, so the output of
// a parallel run is byte-identical to the sequential run however the
// scheduler interleaves workers:
//
//	eng := weblint.NewBatchEngine(l) // Workers defaults to GOMAXPROCS
//	eng.Run(jobs, func(r weblint.BatchResult) bool {
//		for _, m := range r.Messages {
//			fmt.Println(weblint.LintStyle.Format(m))
//		}
//		return true // false cancels the rest of the batch
//	})
//
// The command-line tool exposes the same engine as weblint -j N, and
// sitewalk.Walk runs its per-page phase on it.
//
// # Streaming diagnostics
//
// Every check is a stream of messages underneath, and the [Sink]
// interface is the universal channel: Write receives each message the
// moment it is produced, and returning false cancels the rest of the
// check. The slice-returning APIs are collect-sink wrappers; the
// streaming variants ([Linter.CheckStringTo], CheckBytesTo,
// CheckReaderTo, CheckFileTo, CheckURLTo, and the batch engine's
// RunTo) deliver incrementally, so memory stays flat however many
// findings a pathological document generates:
//
//	var sum weblint.Summary
//	l.CheckFileTo("big.html", sum.Sink(nil)) // count without buffering
//
// Renderers are sinks too: NewRenderer builds one of the pluggable
// output formats — the traditional lint/short/terse/verbose text
// styles, JSON Lines ("json"), or SARIF 2.1.0 ("sarif") — over any
// io.Writer. Compose them with a [Summary] for severity policy:
//
//	r, _ := weblint.NewRenderer("sarif", os.Stdout)
//	var sum weblint.Summary
//	sink := sum.Sink(r)
//	// ... stream one or many checks into sink ...
//	r.Close()
//	if sum.Failures(weblint.FailOnWarning) > 0 { os.Exit(1) }
//
// Plugin authors writing custom renderers, filters or forwarders only
// need to implement Sink; see the warn package documentation for the
// delivery contract.
package weblint

import (
	"io"

	"weblint/internal/baseline"
	"weblint/internal/config"
	"weblint/internal/engine"
	"weblint/internal/fixit"
	"weblint/internal/lint"
	"weblint/internal/plugin"
	"weblint/internal/render"
	"weblint/internal/warn"
)

// Message is one diagnostic produced by a check.
type Message = warn.Message

// Category classifies messages as errors, warnings or style comments.
type Category = warn.Category

// Message categories.
const (
	Error   = warn.Error
	Warning = warn.Warning
	Style   = warn.Style
)

// Options configures a Linter.
type Options = lint.Options

// Settings carries layered configuration (see the config package and
// the .weblintrc syntax).
type Settings = config.Settings

// Linter checks HTML documents. It is safe for concurrent use.
type Linter = lint.Linter

// Formatter renders messages; see the formatter values below.
type Formatter = warn.Formatter

// FormatterFunc adapts a function to the Formatter interface.
type FormatterFunc = warn.FormatterFunc

// Sink is the universal streaming diagnostics channel: Write consumes
// one message and returning false cancels the check feeding it.
type Sink = warn.Sink

// SinkFunc adapts a function to the Sink interface.
type SinkFunc = warn.SinkFunc

// Collector is a Sink that accumulates messages in order.
type Collector = warn.Collector

// Summary counts diagnostics by category; combine with a FailOn
// threshold for policy-driven exit codes.
type Summary = warn.Summary

// FailOn is the severity threshold that turns findings into a failing
// exit.
type FailOn = warn.FailOn

// Severity thresholds for Summary.Failures.
const (
	FailOnError   = warn.FailOnError
	FailOnWarning = warn.FailOnWarning
	FailOnStyle   = warn.FailOnStyle
	FailOnNever   = warn.FailOnNever
)

// ParseFailOn converts a threshold name ("error", "warning", "style",
// "any", "never") to a FailOn.
func ParseFailOn(s string) (FailOn, bool) { return warn.ParseFailOn(s) }

// Renderer is a Sink that renders the diagnostics stream to a writer;
// Close must be called once after the last Write.
type Renderer = render.Renderer

// NewRenderer builds a renderer for one of the output styles listed by
// RenderStyles: "lint", "short", "terse", "verbose", "json" (JSON
// Lines) or "sarif" (SARIF 2.1.0).
func NewRenderer(style string, w io.Writer) (Renderer, error) { return render.New(style, w) }

// RenderStyles returns the recognised renderer names.
func RenderStyles() []string { return render.Styles() }

// NewFormatterSink wraps any Formatter as a streaming Renderer writing
// one line per message to w — the hook for custom output styles.
func NewFormatterSink(f Formatter, w io.Writer) Renderer { return render.NewFormatter(f, w) }

// ContentChecker is the plugin interface for validating non-HTML
// content embedded in documents (style sheets, scripts); register
// implementations through Options.Plugins. Plugin messages must be
// registered with RegisterMessage during init.
type ContentChecker = plugin.ContentChecker

// MessageDef describes a registrable output message.
type MessageDef = warn.Def

// RegisterMessage adds a message definition to the registry; plugins
// call this from init for the messages they emit.
func RegisterMessage(d MessageDef) { warn.Register(d) }

// Locale returns a built-in message translation catalog by name
// ("fr", "de").
func Locale(name string) (warn.Catalog, bool) { return warn.Locale(name) }

// Built-in message formatters: the traditional lint style
// ("file(line): text"), the -s short style ("line N: text"), the -t
// terse style ("file:line:id"), and a verbose style with explanations.
var (
	LintStyle    Formatter = warn.Lint{}
	ShortStyle   Formatter = warn.Short{}
	TerseStyle   Formatter = warn.Terse{}
	VerboseStyle Formatter = warn.Verbose{}
)

// New builds a Linter.
func New(o Options) (*Linter, error) { return lint.New(o) }

// MustNew is New but panics on error; for tests and examples.
func MustNew(o Options) *Linter { return lint.MustNew(o) }

// NewSettings returns default settings, ready for Config layering or
// direct field adjustment.
func NewSettings() *Settings { return config.NewSettings() }

// BatchJob names one document for the batch engine: set exactly one
// of Src (in-memory bytes, checked zero-copy), Path, or URL.
type BatchJob = engine.Job

// BatchResult is the outcome of one batch job, delivered in input
// order.
type BatchResult = engine.Result

// BatchEngine lints a stream of jobs on a bounded worker pool and
// delivers results in deterministic input order. See NewBatchEngine.
type BatchEngine = engine.Engine

// NewBatchEngine returns a batch engine checking through l (nil for a
// default Linter) on GOMAXPROCS workers.
func NewBatchEngine(l *Linter) *BatchEngine { return engine.New(l) }

// CheckString checks an in-memory document with default options.
func CheckString(name, src string) []Message {
	return lint.MustNew(lint.Options{}).CheckString(name, src)
}

// CheckBytes checks an in-memory document with default options,
// without copying it; see Linter.CheckBytes for the aliasing
// contract.
func CheckBytes(name string, src []byte) []Message {
	return lint.MustNew(lint.Options{}).CheckBytes(name, src)
}

// CheckFile checks a file on disk with default options.
func CheckFile(path string) ([]Message, error) {
	return lint.MustNew(lint.Options{}).CheckFile(path)
}

// Fix is a machine-applicable remediation attached to a Message: a
// label plus byte-span edits over the original source document.
type Fix = warn.Fix

// Edit is one span replacement of a Fix: bytes [Start, End) of the
// checked document are replaced by Text.
type Edit = warn.Edit

// FixReport summarises one ApplyFixes call: applied and skipped fix
// counts plus per-fix outcomes in stream order.
type FixReport = fixit.Report

// FixOutcome records what happened to one fixable message.
type FixOutcome = fixit.Outcome

// FixApplier is a Sink that retains fixable messages from a
// diagnostics stream; call its Apply once the check finishes.
type FixApplier = fixit.Applier

// ApplyFixes rewrites src with the fixes carried by msgs, dropping
// conflicting fixes deterministically (first in stream order wins),
// and returns the new document plus a report. Applying the fixes and
// re-linting leaves no fixable finding and introduces none, and a
// second pass is a byte-identical no-op — the property the test suite
// enforces document-by-document.
func ApplyFixes(src string, msgs []Message) (string, FixReport) {
	return fixit.Apply(src, msgs)
}

// UnifiedDiff renders a unified diff between two documents — the
// -fix-dry-run output format.
func UnifiedDiff(aName, bName, oldText, newText string) string {
	return fixit.UnifiedDiff(aName, bName, oldText, newText)
}

// Baseline records one run's findings so later runs can be diffed
// against it: fingerprint -> occurrence count, serialised as JSON.
// Fingerprints hash the rule ID, the document name, and the finding's
// source line content — tolerant of line drift, counting multiplicity.
type Baseline = baseline.File

// BaselineSource resolves a document's text for baseline context
// extraction; see FileBaselineSource for the disk-backed default.
type BaselineSource = baseline.SourceFunc

// BaselineRecorder is a Sink recording every finding into a Baseline
// while forwarding the stream.
type BaselineRecorder = baseline.Recorder

// BaselineFilter is a Sink forwarding only findings a Baseline does
// not cover — the "fail only on NEW findings" policy as a composable
// pipeline stage.
type BaselineFilter = baseline.Filter

// NewBaseline returns an empty baseline.
func NewBaseline() *Baseline { return baseline.New() }

// LoadBaseline reads a baseline file from disk.
func LoadBaseline(path string) (*Baseline, error) { return baseline.Load(path) }

// ParseBaseline reads a baseline from its JSON form.
func ParseBaseline(data []byte) (*Baseline, error) { return baseline.Parse(data) }

// NewBaselineRecorder returns a recording pass-through sink; a nil
// next records without forwarding.
func NewBaselineRecorder(next Sink, src BaselineSource) *BaselineRecorder {
	return baseline.NewRecorder(next, src)
}

// NewBaselineFilter returns a filtering sink diffing the stream
// against base.
func NewBaselineFilter(base *Baseline, next Sink, src BaselineSource) *BaselineFilter {
	return baseline.NewFilter(base, next, src)
}

// FileBaselineSource resolves baseline contexts by reading documents
// from disk, caching them for the run.
func FileBaselineSource() BaselineSource { return baseline.FileSource() }
