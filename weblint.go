// Package weblint is a utility library for checking the syntax and
// style of HTML pages, a Go implementation of the weblint tool
// described in "Weblint: Just Another Perl Hack" (Neil Bowers, USENIX
// 1998). It was inspired by lint, which performs a similar function
// for C programmers. Weblint does not aspire to be a strict SGML
// validator, but to provide helpful comments for humans.
//
// The simplest use mirrors the paper's three-line example:
//
//	l := weblint.MustNew(weblint.Options{})
//	msgs, err := l.CheckFile("test.html")
//	for _, m := range msgs {
//		fmt.Println(weblint.LintStyle.Format(m))
//	}
//
// Every output message has an identifier and belongs to one of three
// categories (errors, warnings, style comments); everything can be
// turned on or off, per the tool's philosophy that it "should not
// impose any specific definition of style". See the warn registry for
// the full message inventory and cmd/weblint for the command-line
// tool.
//
// # Zero-copy intake
//
// Documents that already exist as bytes — files, HTTP bodies, upload
// buffers — are checked without a string conversion copy through
// [Linter.CheckBytes]. The contract is simple because a check is
// synchronous: the caller must not mutate the slice while the call is
// in progress, and once it returns every Message owns its text, so
// the buffer may be reused or recycled immediately. CheckFile and
// CheckReader are built on it and read documents into pooled buffers:
// a warm check does not allocate for the document at all.
//
// # Checking a corpus
//
// Every real weblint deployment checks a fleet of documents: weblint
// *.html, the -R site recursion, the poacher robot. The batch engine
// lints a stream of jobs on GOMAXPROCS workers (one shared Linter —
// safe for concurrent use; the HTML spec and warning set are read-only
// and per-check state is pooled) and delivers results in deterministic
// input order — results are buffered per input slot, so the output of
// a parallel run is byte-identical to the sequential run however the
// scheduler interleaves workers:
//
//	eng := weblint.NewBatchEngine(l) // Workers defaults to GOMAXPROCS
//	eng.Run(jobs, func(r weblint.BatchResult) bool {
//		for _, m := range r.Messages {
//			fmt.Println(weblint.LintStyle.Format(m))
//		}
//		return true // false cancels the rest of the batch
//	})
//
// The command-line tool exposes the same engine as weblint -j N, and
// sitewalk.Walk runs its per-page phase on it.
package weblint

import (
	"weblint/internal/config"
	"weblint/internal/engine"
	"weblint/internal/lint"
	"weblint/internal/plugin"
	"weblint/internal/warn"
)

// Message is one diagnostic produced by a check.
type Message = warn.Message

// Category classifies messages as errors, warnings or style comments.
type Category = warn.Category

// Message categories.
const (
	Error   = warn.Error
	Warning = warn.Warning
	Style   = warn.Style
)

// Options configures a Linter.
type Options = lint.Options

// Settings carries layered configuration (see the config package and
// the .weblintrc syntax).
type Settings = config.Settings

// Linter checks HTML documents. It is safe for concurrent use.
type Linter = lint.Linter

// Formatter renders messages; see the formatter values below.
type Formatter = warn.Formatter

// ContentChecker is the plugin interface for validating non-HTML
// content embedded in documents (style sheets, scripts); register
// implementations through Options.Plugins. Plugin messages must be
// registered with RegisterMessage during init.
type ContentChecker = plugin.ContentChecker

// MessageDef describes a registrable output message.
type MessageDef = warn.Def

// RegisterMessage adds a message definition to the registry; plugins
// call this from init for the messages they emit.
func RegisterMessage(d MessageDef) { warn.Register(d) }

// Locale returns a built-in message translation catalog by name
// ("fr", "de").
func Locale(name string) (warn.Catalog, bool) { return warn.Locale(name) }

// Built-in message formatters: the traditional lint style
// ("file(line): text"), the -s short style ("line N: text"), the -t
// terse style ("file:line:id"), and a verbose style with explanations.
var (
	LintStyle    Formatter = warn.Lint{}
	ShortStyle   Formatter = warn.Short{}
	TerseStyle   Formatter = warn.Terse{}
	VerboseStyle Formatter = warn.Verbose{}
)

// New builds a Linter.
func New(o Options) (*Linter, error) { return lint.New(o) }

// MustNew is New but panics on error; for tests and examples.
func MustNew(o Options) *Linter { return lint.MustNew(o) }

// NewSettings returns default settings, ready for Config layering or
// direct field adjustment.
func NewSettings() *Settings { return config.NewSettings() }

// BatchJob names one document for the batch engine: set exactly one
// of Src (in-memory bytes, checked zero-copy), Path, or URL.
type BatchJob = engine.Job

// BatchResult is the outcome of one batch job, delivered in input
// order.
type BatchResult = engine.Result

// BatchEngine lints a stream of jobs on a bounded worker pool and
// delivers results in deterministic input order. See NewBatchEngine.
type BatchEngine = engine.Engine

// NewBatchEngine returns a batch engine checking through l (nil for a
// default Linter) on GOMAXPROCS workers.
func NewBatchEngine(l *Linter) *BatchEngine { return engine.New(l) }

// CheckString checks an in-memory document with default options.
func CheckString(name, src string) []Message {
	return lint.MustNew(lint.Options{}).CheckString(name, src)
}

// CheckBytes checks an in-memory document with default options,
// without copying it; see Linter.CheckBytes for the aliasing
// contract.
func CheckBytes(name string, src []byte) []Message {
	return lint.MustNew(lint.Options{}).CheckBytes(name, src)
}

// CheckFile checks a file on disk with default options.
func CheckFile(path string) ([]Message, error) {
	return lint.MustNew(lint.Options{}).CheckFile(path)
}
